package router

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeBackend is a scriptable aodserver stand-in: healthy /healthz plus
// whatever job handlers the test wires up.
func fakeBackend(t *testing.T, wire func(mux *http.ServeMux)) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","queuedJobs":0,"jobsInFlight":0,"oldestQueueAgeNs":0}`)
	})
	if wire != nil {
		wire(mux)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// keyHomedOn finds a routing key whose rendezvous home is the wanted
// replica — tests force deterministic placement with it.
func keyHomedOn(t *testing.T, rt *Router, idx int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("ds-%d", i)
		if rt.candidates(key)[0].idx == idx {
			return key
		}
	}
	t.Fatal("no key homed on replica within 10000 tries")
	return ""
}

func submitBody(key string) string {
	return `{"datasetId":"` + key + `","options":{"threshold":0.1}}`
}

// TestSubmitFailover5xx: a submit whose home replica answers 500 retries
// onto the sibling, returns its 202 with the id rewritten into the router
// namespace, and surfaces the absorbed attempts in the header and the
// retry counter.
func TestSubmitFailover5xx(t *testing.T) {
	bad := fakeBackend(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		})
	})
	good := fakeBackend(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"job-9","state":"queued"}`)
		})
	})
	rt := newTestRouter(t, Config{
		Replicas:      []string{bad.URL, good.URL},
		BackoffBase:   time.Millisecond,
		ProbeInterval: time.Hour,
	})
	key := keyHomedOn(t, rt, 0)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(submitBody(key))))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.ID != "r1.job-9" {
		t.Fatalf("job id = %q, want r1.job-9 (failed over, router-namespaced)", view.ID)
	}
	if got := rec.Header().Get("Location"); got != "/jobs/r1.job-9" {
		t.Fatalf("Location = %q", got)
	}
	if got := rec.Header().Get("X-AOD-Router"); got == "" {
		t.Fatal("response missing the X-AOD-Router identity header")
	}
	if n, _ := strconv.Atoi(rec.Header().Get("X-AOD-Router-Attempts")); n != 2 {
		t.Fatalf("attempts header = %q, want 2", rec.Header().Get("X-AOD-Router-Attempts"))
	}
	if rt.met.retries.Value() != 1 {
		t.Fatalf("aod_router_retries_total = %d, want 1", rt.met.retries.Value())
	}
}

// TestSubmitExhausted: when every replica keeps failing, the client gets
// the backend's own last 5xx (not a mushy 502) and the exhausted counter
// moves.
func TestSubmitExhausted(t *testing.T) {
	mk := func() *httptest.Server {
		return fakeBackend(t, func(mux *http.ServeMux) {
			mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", "7")
				http.Error(w, "overload", http.StatusInternalServerError)
			})
		})
	}
	rt := newTestRouter(t, Config{
		Replicas:      []string{mk().URL, mk().URL},
		MaxAttempts:   3,
		BackoffBase:   time.Millisecond,
		ProbeInterval: time.Hour,
	})
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(submitBody("k"))))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("exhausted submit = %d, want the backend's 500", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want the backend's own hint", got)
	}
	if n, _ := strconv.Atoi(rec.Header().Get("X-AOD-Router-Attempts")); n != 3 {
		t.Fatalf("attempts = %q, want MaxAttempts=3", rec.Header().Get("X-AOD-Router-Attempts"))
	}
	if rt.met.exhausted.Value() != 1 {
		t.Fatalf("exhausted counter = %d, want 1", rt.met.exhausted.Value())
	}
}

// TestTenantShedRetryAfter: the token bucket refuses the over-quota submit
// with 503, a usable Retry-After, and the labeled shed counter — before any
// backend sees the request.
func TestTenantShedRetryAfter(t *testing.T) {
	backendHits := 0
	be := fakeBackend(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
			backendHits++
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"job-1"}`)
		})
	})
	rt := newTestRouter(t, Config{
		Replicas:      []string{be.URL},
		DefaultQuota:  TenantQuota{Rate: 0.5, Burst: 1},
		ProbeInterval: time.Hour,
	})
	req := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(submitBody("k")))
		r.Header.Set("X-AOD-Tenant", "alice")
		rt.ServeHTTP(rec, r)
		return rec
	}
	if rec := req(); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", rec.Code, rec.Body)
	}
	rec := req()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-quota submit = %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Fatalf("shed Retry-After = %q, want integer in [1, ceil(1/rate)+1]", rec.Header().Get("Retry-After"))
	}
	if rt.met.shedTenant.Value() != 1 {
		t.Fatalf("shed{reason=tenant} = %d, want 1", rt.met.shedTenant.Value())
	}
	if backendHits != 1 {
		t.Fatalf("backend saw %d submits; the shed one must not reach it", backendHits)
	}
}

// TestQueueShedBounds: when every healthy replica's queue age exceeds
// MaxQueueAge the router sheds with a Retry-After derived from (and bounded
// by) the congestion, across a range of observed ages.
func TestQueueShedBounds(t *testing.T) {
	be := fakeBackend(t, nil)
	maxAge := 3 * time.Second
	rt := newTestRouter(t, Config{
		Replicas:      []string{be.URL},
		MaxQueueAge:   maxAge,
		ProbeInterval: time.Hour,
	})
	for _, age := range []time.Duration{
		maxAge + time.Millisecond, 5 * time.Second, 42 * time.Second, 10 * time.Minute,
	} {
		rt.replicas[0].queueAgeNs.Store(int64(age))
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(submitBody("k"))))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("age %v: submit = %d, want 503", age, rec.Code)
		}
		ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil || ra < 1 || ra > int(maxAge/time.Second)+1 {
			t.Fatalf("age %v: Retry-After = %q, want integer in [1, %d]",
				age, rec.Header().Get("Retry-After"), int(maxAge/time.Second)+1)
		}
	}
	// Back under the bound: admitted again (404 from the bare backend,
	// which has no /jobs handler — but it got through).
	rt.replicas[0].queueAgeNs.Store(0)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(submitBody("k"))))
	if rec.Code == http.StatusServiceUnavailable {
		t.Fatalf("submit still shed after queues drained: %d", rec.Code)
	}
	if rt.met.shedQueue.Value() != 4 {
		t.Fatalf("shed{reason=queue} = %d, want 4", rt.met.shedQueue.Value())
	}
}

// TestStreamFailover: a stream that dies before its terminal event is
// failed over — resubmit to the sibling, synthetic failover marker, spliced
// continuation — and later requests for the job follow it to its new home.
func TestStreamFailover(t *testing.T) {
	dying := fakeBackend(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"job-1","state":"queued"}`)
		})
		mux.HandleFunc("GET /jobs/job-1/stream", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"type":"level","level":1}`)
			// Return without a done event: the replica died mid-job.
		})
	})
	surviving := fakeBackend(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"job-2","state":"queued"}`)
		})
		mux.HandleFunc("GET /jobs/job-2/stream", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"type":"level","level":1}`)
			fmt.Fprintln(w, `{"type":"done","state":"done"}`)
		})
		mux.HandleFunc("GET /jobs/job-2", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"id":"job-2","state":"done"}`)
		})
	})
	rt := newTestRouter(t, Config{
		Replicas:      []string{dying.URL, surviving.URL},
		BackoffBase:   time.Millisecond,
		ProbeInterval: time.Hour,
	})
	front := httptest.NewServer(rt)
	defer front.Close()
	key := keyHomedOn(t, rt, 0)

	resp, err := http.Post(front.URL+"/jobs", "application/json", strings.NewReader(submitBody(key)))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.ID != "r0.job-1" {
		t.Fatalf("job id = %q, want r0.job-1", view.ID)
	}

	resp, err = http.Get(front.URL + "/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var types []string
	sawFailover := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Type, State, From, To string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
		if ev.Type == "failover" {
			sawFailover = true
			if ev.From != "r0" || ev.To != "r1" {
				t.Fatalf("failover event %s→%s, want r0→r1", ev.From, ev.To)
			}
		}
		if ev.Type == "done" && ev.State != "done" {
			t.Fatalf("terminal state %q", ev.State)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawFailover || len(types) == 0 || types[len(types)-1] != "done" {
		t.Fatalf("stream events %v, want a failover marker and a final done", types)
	}
	if rt.met.failovers.Value() != 1 {
		t.Fatalf("failovers = %d, want 1", rt.met.failovers.Value())
	}

	// The job's identity survived the move: the original gid now resolves
	// to the surviving replica, id still rewritten to the client's handle.
	resp, err = http.Get(front.URL + "/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var after struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if after.ID != view.ID || after.State != "done" {
		t.Fatalf("post-failover job view = %+v, want id %s state done", after, view.ID)
	}
}

// TestUploadFanout: one client upload lands on every replica, and partial
// replication failures are counted but don't fail the client.
func TestUploadFanout(t *testing.T) {
	var gotA, gotB []byte
	a := fakeBackend(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /datasets", func(w http.ResponseWriter, r *http.Request) {
			gotA, _ = io.ReadAll(r.Body)
			w.WriteHeader(http.StatusCreated)
			fmt.Fprint(w, `{"id":"abc123","rows":2}`)
		})
	})
	b := fakeBackend(t, func(mux *http.ServeMux) {
		mux.HandleFunc("POST /datasets", func(w http.ResponseWriter, r *http.Request) {
			gotB, _ = io.ReadAll(r.Body)
			w.WriteHeader(http.StatusCreated)
			fmt.Fprint(w, `{"id":"abc123","rows":2}`)
		})
	})
	rt := newTestRouter(t, Config{Replicas: []string{a.URL, b.URL}, ProbeInterval: time.Hour})
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/datasets?name=x", strings.NewReader("a,b\n1,2\n")))
	if rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d: %s", rec.Code, rec.Body)
	}
	if string(gotA) != "a,b\n1,2\n" || string(gotB) != "a,b\n1,2\n" {
		t.Fatalf("fan-out bodies: a=%q b=%q", gotA, gotB)
	}
	if got := rec.Header().Get("X-AOD-Router-Replicas"); got != "2/2" {
		t.Fatalf("replication header = %q, want 2/2", got)
	}
}
