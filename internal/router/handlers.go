package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aod/internal/service"
)

// shed answers 503 with an honest Retry-After — never a bare refusal.
func (rt *Router) shed(w http.ResponseWriter, reason string, retryAfter int) {
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("router: load shed (%s); retry after %ds", reason, retryAfter))
}

// postJob is the admission-controlled submit path: tenant token bucket,
// then queue-age shedding, then a hash-routed, retrying submit. The job id
// in the response is rewritten into the router namespace and the submit
// spec remembered for failover.
func (rt *Router) postJob(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get("X-AOD-Tenant")
	if wait, ok := rt.admit.allow(tenant, rt.now()); !ok {
		rt.met.shedTenant.Inc()
		rt.shed(w, "tenant quota", wait)
		return
	}
	if age, shedding := rt.queueShed(); shedding {
		rt.met.shedQueue.Inc()
		rt.shed(w, "queues saturated", service.RetryAfterSeconds(age, rt.cfg.MaxQueueAge))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("router: reading submit body: %w", err))
		return
	}
	if len(body) > maxSubmitBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("router: submit body over %d bytes", maxSubmitBytes))
		return
	}
	// Only the routing key is parsed here; option validation is the
	// replica's job (it owns the canonical 400s).
	var spec struct {
		DatasetID string `json:"datasetId"`
	}
	_ = json.Unmarshal(body, &spec)

	// 404 is retryable on submit: a replica that missed the dataset's
	// replication fan-out answers "unknown dataset" even though a sibling
	// has it. Only after every replica says 404 does the client see one.
	res := rt.tryReplicas(r.Context(), rt.candidates(spec.DatasetID), true, func(ctx context.Context, base string) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, err
	})
	if res.resp == nil {
		rt.exhaustedReply(w, res)
		return
	}
	raw := readBody(res.resp)
	if res.resp.StatusCode == http.StatusAccepted {
		var view struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(raw, &view) == nil && view.ID != "" {
			gid := res.rp.name() + "." + view.ID
			rt.submits.put(gid, submitRecord{
				body:      body,
				datasetID: spec.DatasetID,
				replica:   res.rp.idx,
				localID:   view.ID,
			})
			raw = rewriteID(raw, gid)
			w.Header().Set("Location", "/jobs/"+gid)
		}
	}
	forward(w, res.resp, raw, res.attempts)
}

// jobProxy serves GET/DELETE /jobs/{id} and GET /jobs/{id}/trace by routing
// to the job's home replica. A plain GET whose home replica is gone falls
// back to resubmitting from the remembered spec — polling clients survive a
// replica death the same way streaming ones do.
func (rt *Router) jobProxy(w http.ResponseWriter, r *http.Request) {
	gid := r.PathValue("id")
	rec, idx, local, ok := rt.resolveJob(gid)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("router: unknown job %q", gid))
		return
	}
	suffix := ""
	if strings.HasSuffix(r.URL.Path, "/trace") {
		suffix = "/trace"
	}
	rp := rt.replicas[idx]
	res := rt.tryReplicas(r.Context(), []*replica{rp}, false, func(ctx context.Context, base string) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, r.Method, base+"/jobs/"+local+suffix, nil)
	})
	if res.resp == nil {
		// Home replica unreachable. For status polls with a remembered
		// spec, fail the job over instead of failing the client.
		if r.Method == http.MethodGet && suffix == "" && rec != nil {
			if nidx, nlocal, err := rt.failover(r.Context(), gid, *rec, idx); err == nil {
				nres := rt.tryReplicas(r.Context(), []*replica{rt.replicas[nidx]}, false, func(ctx context.Context, base string) (*http.Request, error) {
					return http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+nlocal, nil)
				})
				if nres.resp != nil {
					forward(w, nres.resp, rewriteID(readBody(nres.resp), gid), res.attempts+nres.attempts)
					return
				}
			}
		}
		rt.exhaustedReply(w, res)
		return
	}
	raw := readBody(res.resp)
	if suffix == "" {
		raw = rewriteID(raw, gid)
	}
	forward(w, res.resp, raw, res.attempts)
}

// failover re-submits a remembered job spec to a healthy replica other than
// exclude (unless it is the only one) and repoints the submit memory so
// every later request for the gid lands on the new home. Safe because
// submits dedup by cache key: if the job already finished and its report
// peered or persisted, the new home serves it without recomputing.
func (rt *Router) failover(ctx context.Context, gid string, rec submitRecord, exclude int) (idx int, local string, err error) {
	rt.met.failovers.Inc()
	// A failover is a retry of the job's work on a new replica: count it in
	// the retry total too, so one counter answers "did the router have to
	// absorb anything" regardless of which path absorbed it.
	rt.met.retries.Inc()
	cands := make([]*replica, 0, len(rt.replicas))
	for _, rp := range rt.candidates(rec.datasetID) {
		if rp.idx != exclude {
			cands = append(cands, rp)
		}
	}
	if len(cands) == 0 {
		cands = rt.candidates(rec.datasetID)
	}
	res := rt.tryReplicas(ctx, cands, true, func(ctx context.Context, base string) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(rec.body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, err
	})
	if res.resp == nil {
		if res.lastErr != nil {
			return 0, "", fmt.Errorf("router: failover submit: %w", res.lastErr)
		}
		return 0, "", fmt.Errorf("router: failover submit failed (last status %d)", res.lastStatus)
	}
	raw := readBody(res.resp)
	if res.resp.StatusCode != http.StatusAccepted {
		return 0, "", fmt.Errorf("router: failover submit: status %d", res.resp.StatusCode)
	}
	var view struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(raw, &view) != nil || view.ID == "" {
		return 0, "", fmt.Errorf("router: failover submit: bad response body")
	}
	rec.replica, rec.localID = res.rp.idx, view.ID
	rt.submits.put(gid, rec)
	rt.logf("job %s failed over to %s (%s)", gid, res.rp.name(), view.ID)
	return res.rp.idx, view.ID, nil
}

// streamJob proxies the NDJSON progress stream with mid-stream failover: if
// the feed breaks before its terminal "done" event, the router resubmits
// the remembered spec to a surviving replica, injects a synthetic
// {"type":"failover"} event, and splices the new stream in. Clients may see
// level events replayed across the splice; the terminal event arrives
// exactly once.
func (rt *Router) streamJob(w http.ResponseWriter, r *http.Request) {
	gid := r.PathValue("id")
	rec, idx, local, ok := rt.resolveJob(gid)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("router: unknown job %q", gid))
		return
	}
	flusher, _ := w.(http.Flusher)
	started := false
	for hop := 0; hop <= len(rt.replicas); hop++ {
		rp := rt.replicas[idx]
		// No attempt timeout: streams legitimately outlive any RPC bound.
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rp.base+"/jobs/"+local+"/stream", nil)
		if err != nil {
			break
		}
		resp, doErr := rt.do(rp, req)
		if doErr == nil && resp.StatusCode == http.StatusOK {
			if !started {
				started = true
				w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
				w.Header().Set("X-Accel-Buffering", "no")
				w.WriteHeader(http.StatusOK)
			}
			done := copyStream(w, flusher, resp.Body)
			resp.Body.Close()
			if done {
				return
			}
		} else if doErr == nil {
			// Conclusive non-200 (e.g. 404 on a replica that restarted):
			// only a remembered spec can rescue it; otherwise forward.
			raw := readBody(resp)
			if !(resp.StatusCode == http.StatusNotFound && rec != nil) {
				if !started {
					forward(w, resp, raw, hop+1)
				}
				return
			}
		}
		if r.Context().Err() != nil || rec == nil {
			break
		}
		nidx, nlocal, ferr := rt.failover(r.Context(), gid, *rec, idx)
		if ferr != nil {
			rt.logf("stream %s: %v", gid, ferr)
			break
		}
		if started {
			// The synthetic event keeps the splice honest; stream readers
			// skip event types they don't know.
			ev, _ := json.Marshal(map[string]string{
				"type": "failover", "jobId": gid,
				"from": rt.replicas[idx].name(), "to": rt.replicas[nidx].name(),
			})
			w.Write(append(ev, '\n'))
			if flusher != nil {
				flusher.Flush()
			}
		}
		idx, local = nidx, nlocal
	}
	if !started {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("router: stream for %s unavailable on every replica", gid))
	}
	// Started but never reached "done" and out of failover hops: the
	// truncated stream is itself the honest signal; the client's read
	// fails and its own retry policy takes over.
}

// copyStream forwards NDJSON lines, flushing each, until the body errors or
// the terminal "done" event passes through. Partial trailing lines (a
// mid-line connection cut) are dropped, never forwarded.
func copyStream(w io.Writer, flusher http.Flusher, body io.Reader) (sawDone bool) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		w.Write(line)
		w.Write([]byte{'\n'})
		if flusher != nil {
			flusher.Flush()
		}
		var ev struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(line, &ev) == nil && ev.Type == "done" {
			return true
		}
	}
	return false
}

// postDataset replicates the upload to every replica — uploads are
// content-addressed and idempotent, so "send it everywhere" is both safe
// and what makes job failover possible. The first successful replica's
// response goes to the client; stragglers that miss the fan-out are healed
// later by the submit path's 404 failover.
func (rt *Router) postDataset(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxUploadBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("router: reading upload: %w", err))
		return
	}
	if int64(len(body)) > rt.cfg.MaxUploadBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("router: upload over %d bytes", rt.cfg.MaxUploadBytes))
		return
	}
	q := ""
	if r.URL.RawQuery != "" {
		q = "?" + r.URL.RawQuery
	}
	ct := r.Header.Get("Content-Type")
	var firstResp *http.Response
	var firstRaw []byte
	var lastResp *http.Response
	var lastRaw []byte
	var lastErr error
	okCount, tried := 0, 0
	for _, rp := range rt.orderedHealthyFirst() {
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.AttemptTimeout)
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, rp.base+"/datasets"+q, bytes.NewReader(body))
		if rerr != nil {
			cancel()
			continue
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		tried++
		resp, derr := rt.do(rp, req)
		if derr != nil {
			cancel()
			lastErr = derr
			rt.met.uploadRepl.Inc()
			rt.logf("upload replication to %s failed: %v", rp.name(), derr)
			continue
		}
		raw := readBody(resp)
		cancel()
		lastResp, lastRaw = resp, raw
		if resp.StatusCode < 300 {
			okCount++
			if firstResp == nil {
				firstResp, firstRaw = resp, raw
			}
		} else {
			rt.met.uploadRepl.Inc()
			rt.logf("upload replication to %s failed: status %d", rp.name(), resp.StatusCode)
		}
	}
	w.Header().Set("X-AOD-Router-Replicas", fmt.Sprintf("%d/%d", okCount, tried))
	switch {
	case firstResp != nil:
		forward(w, firstResp, firstRaw, tried)
	case lastResp != nil:
		// Every replica rejected it the same way (bad CSV, too big):
		// forward the verdict rather than masking it as a gateway error.
		forward(w, lastResp, lastRaw, tried)
	default:
		if lastErr == nil {
			lastErr = fmt.Errorf("no replicas reachable")
		}
		writeErr(w, http.StatusBadGateway, fmt.Errorf("router: upload failed on all replicas: %w", lastErr))
	}
}

// getDataset reads a dataset record from its rendezvous home, failing over
// (404 included — replication may have missed one replica) to siblings.
func (rt *Router) getDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res := rt.tryReplicas(r.Context(), rt.candidates(id), true, func(ctx context.Context, base string) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, base+"/datasets/"+id, nil)
	})
	if res.resp == nil {
		rt.exhaustedReply(w, res)
		return
	}
	forward(w, res.resp, readBody(res.resp), res.attempts)
}

// listProxy serves a read from whichever healthy replica answers first —
// for endpoints where any replica's view is acceptable.
func (rt *Router) listProxy(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		res := rt.tryReplicas(r.Context(), rt.orderedHealthyFirst(), false, func(ctx context.Context, base string) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		})
		if res.resp == nil {
			rt.exhaustedReply(w, res)
			return
		}
		forward(w, res.resp, readBody(res.resp), res.attempts)
	}
}

// listJobs merges every reachable replica's job list, namespacing ids.
func (rt *Router) listJobs(w http.ResponseWriter, r *http.Request) {
	merged := make([]map[string]any, 0, 16)
	for _, rp := range rt.replicas {
		if !rp.up.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.AttemptTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.base+"/jobs", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := rt.do(rp, req)
		if err != nil {
			cancel()
			continue
		}
		raw := readBody(resp)
		cancel()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		var jobs []map[string]any
		if json.Unmarshal(raw, &jobs) != nil {
			continue
		}
		for _, j := range jobs {
			if id, _ := j["id"].(string); id != "" {
				j["id"] = rp.name() + "." + id
			}
			merged = append(merged, j)
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// healthz reports the router ready while at least one replica is.
func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, rp := range rt.replicas {
		if rp.up.Load() {
			up++
		}
	}
	status, code := "ok", http.StatusOK
	switch {
	case up == 0:
		status, code = "down", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int(rt.cfg.ProbeInterval/time.Second)+1))
	case up < len(rt.replicas):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status": status, "replicasUp": up, "replicas": len(rt.replicas),
	})
}

// routerz is the operator's view: per-replica health, quota config, and
// the submit-memory footprint.
func (rt *Router) routerz(w http.ResponseWriter, r *http.Request) {
	views := make([]replicaView, 0, len(rt.replicas))
	for _, rp := range rt.replicas {
		views = append(views, rp.view())
	}
	rt.submits.mu.Lock()
	remembered := rt.submits.l.Len()
	rt.submits.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"replicas":        views,
		"defaultQuota":    rt.cfg.DefaultQuota,
		"tenantQuotas":    rt.cfg.Quotas,
		"maxQueueAge":     rt.cfg.MaxQueueAge.String(),
		"maxAttempts":     rt.cfg.MaxAttempts,
		"rememberedJobs":  remembered,
		"submitMemoryCap": submitMemoryCap,
	})
}

// stats aggregates: the router's own replica states plus each reachable
// replica's GET /stats verbatim.
func (rt *Router) stats(w http.ResponseWriter, r *http.Request) {
	replicas := make(map[string]json.RawMessage, len(rt.replicas))
	for _, rp := range rt.replicas {
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.AttemptTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.base+"/stats", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := rt.do(rp, req)
		if err != nil {
			cancel()
			replicas[rp.name()], _ = json.Marshal(map[string]string{"error": err.Error()})
			continue
		}
		raw := readBody(resp)
		cancel()
		if resp.StatusCode == http.StatusOK && json.Valid(raw) {
			replicas[rp.name()] = raw
		} else {
			replicas[rp.name()], _ = json.Marshal(map[string]string{"error": fmt.Sprintf("status %d", resp.StatusCode)})
		}
	}
	views := make([]replicaView, 0, len(rt.replicas))
	for _, rp := range rt.replicas {
		views = append(views, rp.view())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"router":   map[string]any{"replicas": views},
		"replicas": replicas,
	})
}

func (rt *Router) metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.cfg.Metrics.WritePrometheus(w)
}
