package bench

import (
	"os"
	"testing"

	"aod/internal/telemetry"
)

// TestShardedOverheadGuard measures the shard protocol tax directly: the
// discover-sharded-loopback workload (full wire protocol over in-process
// workers — binary columnar frames, pipelined level dispatch) against
// discover-pool on the same 5k-row dataset, same process, interleaved runs.
// The budget is sharded/pool ≤ 1.05 — the protocol-v2 contract — gated at
// 1.15 to absorb CI-runner noise. Opt-in via AOD_BENCH_GUARD=1 — the run
// takes tens of seconds, far too slow for the ordinary test suite.
func TestShardedOverheadGuard(t *testing.T) {
	if os.Getenv("AOD_BENCH_GUARD") == "" {
		t.Skip("set AOD_BENCH_GUARD=1 to run the shard overhead guard")
	}
	var pool, sharded func(b *testing.B)
	for _, wl := range jsonWorkloads(42) {
		switch wl.name {
		case "discover-pool/n=5000,attrs=10":
			pool = wl.fn
		case "discover-sharded-loopback/n=5000,attrs=10":
			sharded = wl.fn
		}
	}
	if pool == nil || sharded == nil {
		t.Fatal("guard workloads missing from jsonWorkloads")
	}

	const runs = 5
	nsOf := func(fn func(b *testing.B)) float64 {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			t.Fatal("benchmark run failed")
		}
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	poolNs := make([]float64, 0, runs)
	shardedNs := make([]float64, 0, runs)
	for i := 0; i < runs; i++ { // interleaved, so drift hits both sides alike
		poolNs = append(poolNs, nsOf(pool))
		shardedNs = append(shardedNs, nsOf(sharded))
	}
	p50Pool := telemetry.ExactQuantile(poolNs, 0.50)
	p50Sharded := telemetry.ExactQuantile(shardedNs, 0.50)
	ratio := p50Sharded / p50Pool
	t.Logf("sharded %.1fms vs pool %.1fms: ratio %.3f (budget 1.05, gate 1.15)",
		p50Sharded/1e6, p50Pool/1e6, ratio)
	if ratio > 1.15 {
		t.Errorf("sharded/pool ratio %.3f exceeds the 1.15 gate (budget is 1.05)", ratio)
	}
}
