// Package store is the disk persistence layer behind the discovery service:
// a content-addressed dataset store, a report store for completed job
// results, and a manifest snapshot of registry metadata, all under one data
// directory. It exists so that an aodserver restart keeps every uploaded
// dataset and every computed report — the substrate the ROADMAP's scaling
// items (sharding by fingerprint, replica routing) build on.
//
// On-disk layout:
//
//	<dir>/manifest.json        registry metadata snapshot (atomic rewrite)
//	<dir>/datasets/<fp>.csv    dataset payloads named by content fingerprint
//	<dir>/reports/<h>.json     report envelopes named by SHA-256 of cache key
//	<dir>/quarantine/          corrupt files are moved here, never deleted
//	<dir>/tmp/                 staging area for atomic write-then-rename
//
// Every write is write-to-temp + fsync + rename, so a crash mid-write leaves
// at worst an orphan in tmp/, never a torn file under a live name. Every
// read verifies integrity (content fingerprint for datasets, embedded key
// for reports); a file that fails verification is quarantined — moved aside
// for post-mortem — and reported as absent or corrupt, never as a panic or
// a fatal startup error.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

const (
	datasetsDir   = "datasets"
	reportsDir    = "reports"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"
	manifestName  = "manifest.json"
)

// ErrNotFound reports that the requested object has no file in the store.
var ErrNotFound = errors.New("store: not found")

// ErrCorrupt reports that an object's file failed integrity verification and
// has been quarantined.
var ErrCorrupt = errors.New("store: corrupt object quarantined")

// Store is a disk-backed object store rooted at one data directory. All
// methods are safe for concurrent use.
type Store struct {
	dir string

	// mu serializes manifest rewrites; payload files are content-addressed
	// and written atomically, so they need no lock.
	mu       sync.Mutex
	manifest manifestFile

	// gcMu serializes report-store GC scans; maxReportBytes <= 0 disables
	// the GC (see SetMaxReportBytes).
	gcMu           sync.Mutex
	maxReportBytes int64
	reportsEvicted atomic.Uint64

	quarantined atomic.Uint64
	recovered   int // datasets re-indexed by the manifest recovery scan
}

// Open prepares the data directory (creating it and its subdirectories as
// needed) and loads the manifest. A corrupt manifest is quarantined and
// rebuilt by scanning the dataset files, so Open fails only on I/O errors,
// never on bad content.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	s := &Store{dir: dir}
	for _, sub := range []string{"", datasetsDir, reportsDir, quarantineDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: preparing %s: %w", dir, err)
		}
	}
	// A crash mid-write orphans its temp file; no writer exists at Open, so
	// sweep them rather than leak disk across restarts.
	if ents, err := os.ReadDir(s.path(tmpDir)); err == nil {
		for _, e := range ents {
			os.Remove(s.path(tmpDir, e.Name()))
		}
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the data directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// Quarantined returns the number of corrupt files this store instance has
// moved to the quarantine directory.
func (s *Store) Quarantined() uint64 { return s.quarantined.Load() }

// Recovered returns the number of datasets re-indexed from payload files
// after a corrupt manifest was quarantined at Open.
func (s *Store) Recovered() int { return s.recovered }

// path joins the data directory with relative elements.
func (s *Store) path(elem ...string) string {
	return filepath.Join(append([]string{s.dir}, elem...)...)
}

// writeFileAtomic publishes data under path via write-to-temp, fsync, and
// rename, so readers never observe a partially written file and a crash
// cannot tear an existing one.
func (s *Store) writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(s.path(tmpDir), "put-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	// Make the rename itself durable: without a directory sync the new
	// entry may not survive power loss even though the file data would.
	// Best-effort — not every platform or filesystem supports fsync on a
	// directory handle, and a failure there must not fail a write the
	// journal will usually persist anyway.
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// quarantine moves the file aside into the quarantine directory under a
// timestamped name (so repeated quarantines of one path never collide) and
// counts it. It never deletes data: a corrupt file is evidence.
func (s *Store) quarantine(path string) {
	dst := s.path(quarantineDir,
		fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		// Could not move it (e.g. already gone); leave it and carry on —
		// callers already treat the object as absent.
		return
	}
	s.quarantined.Add(1)
}

// readJSONFile reads and unmarshals path into v. A missing file returns
// ErrNotFound; undecodable content quarantines the file and returns
// ErrCorrupt.
func (s *Store) readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ErrNotFound
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		s.quarantine(path)
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	return nil
}
