package aod

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewBuilder().
		AddStrings("pos", []string{"secr", "secr", "secr", "mngr", "mngr", "mngr", "direc", "direc", "direc"}).
		AddInts("exp", []int64{2, 3, 4, 4, 5, 6, 6, 7, 8}).
		AddInts("sal", []int64{45, 50, 55, 70, 75, 80, 100, 110, 120}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestReportWriteJSON(t *testing.T) {
	ds := testDataset(t)
	rep, err := Discover(ds, Options{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		OCs []struct {
			Context []string `json:"context"`
			A       string   `json:"a"`
			B       string   `json:"b"`
			Error   float64  `json:"error"`
			Level   int      `json:"level"`
		} `json:"ocs"`
		OFDs  []json.RawMessage `json:"ofds"`
		Stats struct {
			Rows  int `json:"rows"`
			Attrs int `json:"attrs"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decoding report JSON: %v\n%s", err, buf.String())
	}
	if decoded.Stats.Rows != 9 || decoded.Stats.Attrs != 3 {
		t.Errorf("stats = %+v", decoded.Stats)
	}
	if len(decoded.OCs) == 0 {
		t.Fatal("no OCs serialized")
	}
	// IncludeOFDs was off: the list must be an empty array, not null.
	if decoded.OFDs == nil {
		t.Error("ofds serialized as null, want []")
	}
	found := false
	for _, oc := range decoded.OCs {
		// exp and sal are globally monotone in this table, so the minimal OC
		// has the empty context.
		if oc.A == "exp" && oc.B == "sal" && oc.Context != nil {
			found = true
		}
	}
	if !found {
		t.Errorf("exp ∼ sal not in serialized OCs: %s", buf.String())
	}

	// The empty-context OC at the top level must serialize context as [].
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, oc := range raw["ocs"].([]any) {
		if oc.(map[string]any)["context"] == nil {
			t.Error("an OC context serialized as null, want []")
		}
	}
}

func TestAlgorithmTextRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{AlgorithmOptimal, AlgorithmExact, AlgorithmIterative} {
		text, err := a.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Algorithm
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != a {
			t.Errorf("round trip %q: got %v, want %v", text, back, a)
		}
	}
	var a Algorithm
	if err := a.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("unmarshal of unknown algorithm should fail")
	}
	b, err := json.Marshal(Options{Algorithm: AlgorithmIterative})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"algorithm":"iterative"`)) {
		t.Errorf("options JSON = %s", b)
	}
}

func TestDatasetFingerprint(t *testing.T) {
	a, b := testDataset(t), testDataset(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical datasets have different fingerprints")
	}
	if len(a.Fingerprint()) != 64 {
		t.Errorf("fingerprint length %d, want 64 hex chars", len(a.Fingerprint()))
	}
	// A single changed value changes the fingerprint.
	c, err := NewBuilder().
		AddStrings("pos", []string{"secr", "secr", "secr", "mngr", "mngr", "mngr", "direc", "direc", "direc"}).
		AddInts("exp", []int64{2, 3, 4, 4, 5, 6, 6, 7, 9}).
		AddInts("sal", []int64{45, 50, 55, 70, 75, 80, 100, 110, 120}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("changed value kept the fingerprint")
	}
	// A renamed column changes the fingerprint (schema is hashed).
	d, err := NewBuilder().
		AddStrings("role", []string{"secr", "secr", "secr", "mngr", "mngr", "mngr", "direc", "direc", "direc"}).
		AddInts("exp", []int64{2, 3, 4, 4, 5, 6, 6, 7, 8}).
		AddInts("sal", []int64{45, 50, 55, 70, 75, 80, 100, 110, 120}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("renamed column kept the fingerprint")
	}
}

func TestDiscoverContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := DiscoverContext(ctx, testDataset(t), Options{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stats.Canceled {
		t.Error("Stats.Canceled not set for pre-canceled context")
	}
}
