// Flightdelays reproduces the paper's flight-dataset use case (Exp-4/Exp-6):
// discover approximate order compatibilities like
// arrivalDelay ∼ lateAircraftDelay and originAirport ∼ IATACode, then use the
// minimal removal sets for outlier detection.
//
// Run with: go run ./examples/flightdelays
package main

import (
	"fmt"
	"log"
	"time"

	"aod"
)

func main() {
	// Synthetic stand-in for the BTS flight feed (see DESIGN.md §4): 20K
	// flights, 10 attributes, with the paper's dependencies planted.
	ds := aod.Flight(20_000, 10, 7)
	fmt.Println("dataset:", ds)

	start := time.Now()
	rep, err := aod.Discover(ds, aod.Options{
		Threshold: 0.10, // the paper's default threshold
		Algorithm: aod.AlgorithmOptimal,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d AOCs in %s (validation share %.1f%%)\n",
		len(rep.OCs), time.Since(start).Round(time.Millisecond),
		rep.Stats.ValidationShare()*100)

	fmt.Println("\nmost interesting AOCs:")
	for i, oc := range rep.OCs {
		if i == 10 {
			break
		}
		fmt.Printf("  %v  score=%.3f\n", oc, oc.Score)
	}

	// The delay dependency: arrival delays track late-aircraft delays except
	// for ≈9.5% of flights delayed by other causes (weather, security, …).
	v, err := aod.ValidateOC(ds, nil, "lateAircraftDelay", "arrivalDelay", 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narrivalDelay ∼ lateAircraftDelay: e = %.2f%%, valid at 10%%: %v\n",
		v.Error*100, v.Valid)
	fmt.Printf("outlier candidates (flights whose arrival delay is NOT explained by the aircraft): %d\n",
		v.Removals)
	for i, row := range v.RemovalRows {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		late, _ := ds.Value(row, "lateAircraftDelay")
		arr, _ := ds.Value(row, "arrivalDelay")
		fmt.Printf("  flight row %d: lateAircraftDelay=%s arrivalDelay=%s\n", row, late, arr)
	}

	// Identifier consistency: airport ids must correspond to IATA codes in
	// ascending order; exceptions are data-quality issues (paper: 8%).
	idc, err := aod.ValidateOC(ds, nil, "origin", "originIATA", 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noriginAirport ∼ IATACode: e = %.2f%% — %d rows with mismatched codes\n",
		idc.Error*100, idc.Removals)

	// The legacy iterative validator on the same candidate: overestimation
	// can push a borderline AOC past the threshold (Exp-4's anecdote).
	it, err := aod.ValidateOCIterative(ds, nil, "lateAircraftDelay", "arrivalDelay", 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlegacy validator estimate: e = %.2f%% (minimal: %.2f%%)\n", it.Error*100, v.Error*100)
	if v.Valid && !it.Valid {
		fmt.Println("→ the legacy validator would have missed this dependency entirely")
	}
}
