package aod

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestCLISmoke builds every command and exercises the end-user workflow:
// datagen → aodiscover → aodvalidate → aodbench.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	// aodserver is built and exercised by TestAODServerSmoke.
	for _, tool := range []string{"aodiscover", "aodvalidate", "datagen", "aodbench"} {
		out := filepath.Join(dir, tool)
		if runtime.GOOS == "windows" {
			out += ".exe"
		}
		cmd := exec.Command(goBin, "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
		bins[tool] = out
	}

	csvPath := filepath.Join(dir, "table1.csv")
	run := func(tool string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bins[tool], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	out := run("datagen", "-dataset", "table1", "-out", csvPath)
	if !strings.Contains(out, "9 rows") {
		t.Errorf("datagen output: %q", out)
	}

	out = run("aodiscover", "-threshold", "0.12", "-ofds", "-removals", csvPath)
	if !strings.Contains(out, "exp ∼ sal") {
		t.Errorf("aodiscover did not find {pos}: exp ∼ sal:\n%s", out)
	}

	// -json must emit the stable Report schema (and nothing else).
	out = run("aodiscover", "-threshold", "0.12", "-ofds", "-json", csvPath)
	var jsonRep struct {
		OCs   []map[string]any `json:"ocs"`
		OFDs  []map[string]any `json:"ofds"`
		Stats map[string]any   `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &jsonRep); err != nil {
		t.Errorf("aodiscover -json output is not valid JSON: %v\n%s", err, out)
	} else if len(jsonRep.OCs) == 0 || jsonRep.Stats["rows"] != float64(9) {
		t.Errorf("aodiscover -json report unexpected: %s", out)
	}

	out = run("aodvalidate", "-a", "sal", "-b", "tax", "-threshold", "0.5", "-compare", csvPath)
	if !strings.Contains(out, "0.4444") || !strings.Contains(out, "0.5556") {
		t.Errorf("aodvalidate did not reproduce Examples 2.15/3.1:\n%s", out)
	}
	if !strings.Contains(out, "WRONGLY reject") {
		t.Errorf("aodvalidate -compare should flag the legacy rejection:\n%s", out)
	}

	out = run("aodvalidate", "-a", "sal", "-b", "bonus", "-context", "pos", "-kind", "od", "-threshold", "0", csvPath)
	if !strings.Contains(out, "valid") {
		t.Errorf("aodvalidate od kind failed:\n%s", out)
	}

	out = run("aodvalidate", "-a", "sal", "-kind", "ofd", "-context", "pos,exp", "-threshold", "0.2", csvPath)
	if !strings.Contains(out, "valid") {
		t.Errorf("aodvalidate ofd kind failed:\n%s", out)
	}

	// Error paths exit non-zero.
	if _, err := exec.Command(bins["aodiscover"], filepath.Join(dir, "missing.csv")).CombinedOutput(); err == nil {
		t.Error("aodiscover should fail on a missing file")
	}
	if _, err := exec.Command(bins["datagen"], "-dataset", "bogus", "-out", csvPath).CombinedOutput(); err == nil {
		t.Error("datagen should reject unknown datasets")
	}
	if _, err := exec.Command(bins["aodbench"], "-exp", "99").CombinedOutput(); err == nil {
		t.Error("aodbench should reject unknown experiments")
	}
	if _, err := exec.Command(bins["aodbench"], "-scale", "galactic").CombinedOutput(); err == nil {
		t.Error("aodbench should reject unknown scales")
	}
}

// buildAODServer compiles the aodserver binary into dir.
func buildAODServer(t *testing.T, dir string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(dir, "aodserver")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	if msg, err := exec.Command(goBin, "build", "-o", bin, "./cmd/aodserver").CombinedOutput(); err != nil {
		t.Fatalf("building aodserver: %v\n%s", err, msg)
	}
	return bin
}

// startAODServer launches the binary and returns the base URL parsed from
// its startup line, plus the running process (for crash-testing).
func startAODServer(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	// The first line announces the resolved ephemeral address.
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatal("aodserver produced no output")
	}
	line := scanner.Text()
	fields := strings.Fields(line) // aodserver listening on HOST:PORT (...)
	if len(fields) < 4 || fields[1] != "listening" {
		t.Fatalf("unexpected startup line: %q", line)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return "http://" + fields[3], cmd
}

// TestAODServerSmoke boots the real aodserver binary on an ephemeral port
// and walks the upload → submit → poll → cache-hit workflow over HTTP.
func TestAODServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildAODServer(t, dir)
	base, _ := startAODServer(t, bin, "-workers", "2")

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if out := get("/healthz"); !strings.Contains(out, "ok") {
		t.Fatalf("/healthz = %q", out)
	}

	csv := "pos,exp,sal\nsecr,2,45\nsecr,3,50\nmngr,4,70\nmngr,5,75\ndirec,6,100\ndirec,7,110\n"
	resp, err := http.Post(base+"/datasets?name=smoke", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.ID == "" {
		t.Fatal("dataset upload returned no id")
	}

	submit := func() string {
		t.Helper()
		body := fmt.Sprintf(`{"datasetId": %q, "options": {"threshold": 0.12}}`, info.ID)
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var job struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		return job.ID
	}
	poll := func(id string) map[string]any {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			var job map[string]any
			if err := json.Unmarshal([]byte(get("/jobs/"+id)), &job); err != nil {
				t.Fatal(err)
			}
			switch job["state"] {
			case "done":
				return job
			case "failed", "canceled":
				t.Fatalf("job %s: %v", id, job)
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("job %s never finished", id)
		return nil
	}
	poll(submit())
	second := poll(submit())
	if second["cacheHit"] != true {
		t.Errorf("second identical job should be a cache hit: %v", second)
	}
	var stats struct {
		CacheHits      uint64 `json:"cacheHits"`
		ValidationRuns uint64 `json:"validationRuns"`
	}
	if err := json.Unmarshal([]byte(get("/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ValidationRuns != 1 || stats.CacheHits != 1 {
		t.Errorf("stats = %+v, want 1 validation run and 1 cache hit", stats)
	}
}

// TestAODServerCrashRecoverySmoke kills a persistent aodserver with SIGKILL
// (a real crash — no graceful shutdown) and verifies a fresh process over
// the same -data-dir still lists the uploaded dataset and serves the
// computed report without re-running discovery.
func TestAODServerCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if runtime.GOOS == "windows" {
		t.Skip("uses SIGKILL")
	}
	dir := t.TempDir()
	bin := buildAODServer(t, dir)
	dataDir := filepath.Join(dir, "data")

	httpJSON := func(base, method, path, body string, out any) int {
		t.Helper()
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s %s: decoding: %v", method, path, err)
			}
		}
		return resp.StatusCode
	}
	pollDone := func(base, jobID string) map[string]any {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			var job map[string]any
			httpJSON(base, "GET", "/jobs/"+jobID, "", &job)
			switch job["state"] {
			case "done":
				return job
			case "failed", "canceled":
				t.Fatalf("job %s: %v", jobID, job)
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("job %s never finished", jobID)
		return nil
	}

	// Generation 1: upload, compute, crash.
	base1, cmd1 := startAODServer(t, bin, "-data-dir", dataDir)
	csv := "pos,exp,sal\nsecr,2,45\nsecr,3,50\nmngr,4,70\nmngr,5,75\ndirec,6,100\ndirec,7,110\n"
	var info struct {
		ID string `json:"id"`
	}
	if code := httpJSON(base1, "POST", "/datasets?name=durable", csv, &info); code != 201 {
		t.Fatalf("upload status %d, want 201", code)
	}
	var job struct {
		ID string `json:"id"`
	}
	body := fmt.Sprintf(`{"datasetId": %q, "options": {"threshold": 0.12}}`, info.ID)
	if code := httpJSON(base1, "POST", "/jobs", body, &job); code != 202 {
		t.Fatalf("submit status %d, want 202", code)
	}
	pollDone(base1, job.ID)
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no shutdown hooks
		t.Fatal(err)
	}
	cmd1.Wait()

	// Generation 2: a fresh process over the same data directory.
	base2, _ := startAODServer(t, bin, "-data-dir", dataDir)
	var datasets []struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	httpJSON(base2, "GET", "/datasets", "", &datasets)
	if len(datasets) != 1 || datasets[0].ID != info.ID || datasets[0].Name != "durable" {
		t.Fatalf("restarted server lists %+v, want the crashed upload", datasets)
	}
	var job2 struct {
		ID string `json:"id"`
	}
	if code := httpJSON(base2, "POST", "/jobs", body, &job2); code != 202 {
		t.Fatalf("post-crash submit status %d, want 202", code)
	}
	done := pollDone(base2, job2.ID)
	if done["cacheHit"] != true {
		t.Error("post-crash identical job recomputed instead of hitting the report store")
	}
	var stats struct {
		ValidationRuns uint64 `json:"validationRuns"`
		CacheDiskHits  uint64 `json:"cacheDiskHits"`
		Persistent     bool   `json:"persistent"`
	}
	httpJSON(base2, "GET", "/stats", "", &stats)
	if !stats.Persistent || stats.ValidationRuns != 0 || stats.CacheDiskHits != 1 {
		t.Errorf("post-crash stats = %+v, want persistent, 0 validation runs, 1 disk hit", stats)
	}
}

// startAODWorker launches the aodworker binary on an ephemeral port and
// returns its address plus the process (for SIGKILL crash-testing).
func startAODWorker(t *testing.T, bin string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	scanner := bufio.NewScanner(stdout)
	if !scanner.Scan() {
		t.Fatal("aodworker produced no output")
	}
	line := scanner.Text()
	fields := strings.Fields(line) // aodworker listening on HOST:PORT (...)
	if len(fields) < 4 || fields[1] != "listening" {
		t.Fatalf("unexpected aodworker startup line: %q", line)
	}
	go io.Copy(io.Discard, stdout)
	return fields[3], cmd
}

// TestShardedWorkersBinaryE2E boots two real aodworker processes and an
// aodserver sharding across them, SIGKILLs one worker while a job is in
// flight, and verifies every job still completes with a report identical to
// local discovery — the end-to-end degradation contract of the distributed
// path.
func TestShardedWorkersBinaryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if runtime.GOOS == "windows" {
		t.Skip("uses SIGKILL")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	serverBin := buildAODServer(t, dir)
	workerBin := filepath.Join(dir, "aodworker")
	if msg, err := exec.Command(goBin, "build", "-o", workerBin, "./cmd/aodworker").CombinedOutput(); err != nil {
		t.Fatalf("building aodworker: %v\n%s", err, msg)
	}

	addr1, _ := startAODWorker(t, workerBin)
	addr2, wcmd2 := startAODWorker(t, workerBin)
	// -shard-cost-min 1 routes even this test-sized dataset to the shard
	// pool under adaptive executor selection, and -shard-quantum -1 fans it
	// out to both workers regardless of size — the point is the wire path
	// and mid-job re-dispatch, not the sizing policy.
	base, _ := startAODServer(t, serverBin, "-workers", addr1+","+addr2, "-shard-cost-min", "1", "-shard-quantum", "-1")

	// A multi-level dataset large enough that the kill below lands mid-job.
	ds := Flight(4000, 8, 17)
	var csv strings.Builder
	if err := ds.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	// Local ground truth per threshold, marshaled through Report so the
	// same JSON normalization applies on both sides.
	wantOCs := func(threshold float64) any {
		t.Helper()
		rep, err := Discover(ds, Options{Threshold: threshold, IncludeOFDs: true})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		return m["ocs"]
	}

	httpJSON := func(method, path, body string, out any) int {
		t.Helper()
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s %s: decoding: %v", method, path, err)
			}
		}
		return resp.StatusCode
	}
	pollDone := func(jobID string) map[string]any {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			var job map[string]any
			httpJSON("GET", "/jobs/"+jobID, "", &job)
			switch job["state"] {
			case "done":
				return job
			case "failed", "canceled":
				t.Fatalf("job %s: %v", jobID, job)
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("job %s never finished", jobID)
		return nil
	}
	checkReport := func(job map[string]any, threshold float64, label string) {
		t.Helper()
		rep, _ := job["report"].(map[string]any)
		if rep == nil {
			t.Fatalf("%s: job has no report: %v", label, job)
		}
		if !reflect.DeepEqual(wantOCs(threshold), rep["ocs"]) {
			t.Errorf("%s: sharded report OCs differ from local discovery", label)
		}
	}

	var info struct {
		ID string `json:"id"`
	}
	if code := httpJSON("POST", "/datasets?name=sharded", csv.String(), &info); code != 201 {
		t.Fatalf("upload status %d, want 201", code)
	}
	submit := func(threshold float64) string {
		t.Helper()
		var job struct {
			ID string `json:"id"`
		}
		body := fmt.Sprintf(`{"datasetId": %q, "options": {"threshold": %g, "includeOFDs": true}}`, info.ID, threshold)
		if code := httpJSON("POST", "/jobs", body, &job); code != 202 {
			t.Fatalf("submit status %d, want 202", code)
		}
		return job.ID
	}

	// Job 1: SIGKILL one worker while it runs. The session re-dispatches the
	// dead worker's slices (or the server falls back locally); the job must
	// complete with the exact local result.
	job1 := submit(0.10)
	if err := wcmd2.Process.Kill(); err != nil { // SIGKILL: no goodbye frame
		t.Fatal(err)
	}
	wcmd2.Wait()
	checkReport(pollDone(job1), 0.10, "mid-kill job")

	// Job 2: submitted after the kill — the dead worker costs one failed
	// dial, the survivor carries the job.
	checkReport(pollDone(submit(0.11)), 0.11, "post-kill job")

	var stats struct {
		Shards []struct {
			Addr          string `json:"addr"`
			AssignedTasks uint64 `json:"assignedTasks"`
			Failures      uint64 `json:"failures"`
		} `json:"shards"`
	}
	httpJSON("GET", "/stats", "", &stats)
	if len(stats.Shards) != 2 {
		t.Fatalf("/stats shards = %+v, want 2 workers", stats.Shards)
	}
	var assigned, failures uint64
	for _, s := range stats.Shards {
		assigned += s.AssignedTasks
		failures += s.Failures
	}
	if assigned == 0 {
		t.Error("no tasks assigned to shard workers")
	}
	if failures == 0 {
		t.Error("the SIGKILLed worker's failures never surfaced in /stats")
	}
}

// startWithEndpoints launches a binary and scans its startup banner for the
// main listen address plus any "metrics on http://..." / "pprof on http://..."
// side listeners, returning (mainAddr, metricsURL, pprofURL).
func startWithEndpoints(t *testing.T, bin string, args ...string) (string, string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	var mainAddr, metricsURL, pprofURL string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		fields := strings.Fields(line)
		switch {
		case len(fields) >= 4 && fields[1] == "metrics":
			metricsURL = fields[3] // ... metrics on http://HOST:PORT/metrics
		case len(fields) >= 4 && fields[1] == "pprof":
			pprofURL = fields[3] // ... pprof on http://HOST:PORT/debug/pprof/
		case len(fields) >= 4 && fields[1] == "listening":
			mainAddr = fields[3]
		}
		if mainAddr != "" {
			break // the listening line is always printed last
		}
	}
	if mainAddr == "" {
		t.Fatalf("%s never announced its listen address", bin)
	}
	go io.Copy(io.Discard, stdout)
	return mainAddr, metricsURL, pprofURL
}

// httpGet fetches a URL and returns (status, body).
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestTelemetryBinaryE2E boots a real aodworker (with -metrics-addr and
// -pprof-addr) and an aodserver (with -pprof-addr) sharding across it, runs a
// job, and curls every observability surface: /metrics on both processes,
// /jobs/{id}/trace with the worker's spans stitched in, and /debug/pprof/ on
// both side listeners.
func TestTelemetryBinaryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	serverBin := buildAODServer(t, dir)
	workerBin := filepath.Join(dir, "aodworker")
	if msg, err := exec.Command(goBin, "build", "-o", workerBin, "./cmd/aodworker").CombinedOutput(); err != nil {
		t.Fatalf("building aodworker: %v\n%s", err, msg)
	}

	workerAddr, workerMetrics, workerPprof := startWithEndpoints(t, workerBin,
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0")
	serverAddr, _, serverPprof := startWithEndpoints(t, serverBin,
		"-addr", "127.0.0.1:0", "-workers", workerAddr, "-shard-cost-min", "1", "-pprof-addr", "127.0.0.1:0")
	base := "http://" + serverAddr

	// Multi-level dataset so the job actually exercises the sharded path.
	ds := Flight(2000, 8, 11)
	var csv strings.Builder
	if err := ds.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/datasets?name=telemetry", "text/csv", strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body := fmt.Sprintf(`{"datasetId": %q, "options": {"threshold": 0.1, "includeOFDs": true}}`, info.ID)
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", job.ID)
		}
		var jv map[string]any
		if _, raw := httpGet(t, base+"/jobs/"+job.ID); json.Unmarshal([]byte(raw), &jv) == nil {
			if jv["state"] == "done" {
				break
			}
			if jv["state"] == "failed" || jv["state"] == "canceled" {
				t.Fatalf("job %s: %v", job.ID, jv)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Server /metrics: service families and (sharded) pool families.
	code, met := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("server /metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE aod_jobs_submitted_total counter",
		"# TYPE aod_job_seconds histogram",
		"aod_jobs_done_total 1",
		"aod_shard_rpc_seconds_count",
		`aod_jobs_routed_total{executor="sharded"} 1`,
		`aod_shard_bytes_total{dir="tx"}`,
		`aod_shard_bytes_total{dir="rx"}`,
		"aod_shard_frames_total",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("server /metrics missing %q", want)
		}
	}

	// Worker /metrics on its own listener.
	code, met = httpGet(t, workerMetrics)
	if code != 200 {
		t.Fatalf("worker /metrics status %d", code)
	}
	for _, want := range []string{
		"aodworker_sessions_total 1", "aodworker_tasks_total", "aodworker_slice_exec_seconds_count",
		`aod_shard_bytes_total{dir="tx"}`, `aod_shard_bytes_total{dir="rx"}`, "aod_shard_frames_total",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("worker /metrics missing %q in:\n%s", want, met)
		}
	}

	// Job trace: the span tree must include the worker's remote spans
	// stitched under the coordinator's rpc spans.
	code, raw := httpGet(t, base+"/jobs/"+job.ID+"/trace")
	if code != 200 {
		t.Fatalf("/jobs/%s/trace status %d", job.ID, code)
	}
	type node struct {
		Name     string  `json:"name"`
		Remote   bool    `json:"remote,omitempty"`
		Children []*node `json:"children,omitempty"`
	}
	var tree struct {
		TraceID string  `json:"traceId"`
		Spans   []*node `json:"spans"`
	}
	if err := json.Unmarshal([]byte(raw), &tree); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if tree.TraceID != job.ID {
		t.Errorf("trace id %q, want %q", tree.TraceID, job.ID)
	}
	names := map[string]int{}
	remoteExecs := 0
	var walk func(n *node)
	walk = func(n *node) {
		names[n.Name]++
		if n.Name == "worker-exec" && n.Remote {
			remoteExecs++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range tree.Spans {
		walk(n)
	}
	for _, want := range []string{"job", "queue-wait", "discover", "partition-build", "level", "rpc"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}
	if remoteExecs == 0 {
		t.Errorf("no remote worker-exec spans stitched into the trace; got %v", names)
	}

	// pprof on both processes.
	for _, url := range []string{serverPprof, workerPprof} {
		if url == "" {
			t.Fatal("pprof listener not announced")
		}
		if code, body := httpGet(t, url); code != 200 || !strings.Contains(body, "goroutine") {
			t.Errorf("GET %s: status %d", url, code)
		}
	}
}

// TestAODLoadSmoke boots the real aodserver and fires a short open-loop
// burst at it with the real aodload binary, then checks the emitted
// aod-bench/v1 report end to end: every traffic class completed requests,
// nothing hit a protocol error, and both client- and server-observed
// latency quantiles are present and ordered.
func TestAODLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	srvBin := buildAODServer(t, dir)
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	loadBin := filepath.Join(dir, "aodload")
	if runtime.GOOS == "windows" {
		loadBin += ".exe"
	}
	if msg, err := exec.Command(goBin, "build", "-o", loadBin, "./cmd/aodload").CombinedOutput(); err != nil {
		t.Fatalf("building aodload: %v\n%s", err, msg)
	}

	// -max-jobs -1 keeps finished jobs around so late stream attaches cannot
	// race history pruning during the burst.
	base, _ := startAODServer(t, srvBin, "-workers", "2", "-queue", "256", "-max-jobs", "-1")

	reportPath := filepath.Join(dir, "load.json")
	args := []string{
		"-server", base, "-duration", "2s", "-rate", "50",
		"-zipf", "0.99", "-mix", "cachehit=70,small=25,large=5",
		"-seed", "42", "-large-timebox", "200ms", "-out", reportPath,
	}
	if msg, err := exec.Command(loadBin, args...).CombinedOutput(); err != nil {
		t.Fatalf("aodload %v: %v\n%s", args, err, msg)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Seed    int64  `json:"seed"`
		Results []struct {
			Name        string  `json:"name"`
			Count       uint64  `json:"count"`
			Errors      uint64  `json:"errors"`
			Shed        uint64  `json:"shed"`
			P50NsPerOp  float64 `json:"p50NsPerOp"`
			P99NsPerOp  float64 `json:"p99NsPerOp"`
			P999NsPerOp float64 `json:"p999NsPerOp"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Schema != "aod-bench/v1" {
		t.Fatalf("report schema %q, want aod-bench/v1", rep.Schema)
	}
	if rep.Seed != 42 {
		t.Errorf("report seed %d, want 42", rep.Seed)
	}

	rows := map[string]int{}
	for i, r := range rep.Results {
		rows[r.Name] = i
	}
	for _, class := range []string{"cachehit", "small", "large"} {
		for _, side := range []string{"client", "server"} {
			name := "load-" + class + "/" + side
			i, ok := rows[name]
			if !ok {
				t.Errorf("report missing workload %q", name)
				continue
			}
			r := rep.Results[i]
			if r.Count == 0 {
				t.Errorf("%s: zero completed requests", name)
			}
			if r.Errors != 0 {
				t.Errorf("%s: %d protocol/job errors, want 0", name, r.Errors)
			}
			if r.P50NsPerOp <= 0 || r.P99NsPerOp < r.P50NsPerOp || r.P999NsPerOp < r.P99NsPerOp {
				t.Errorf("%s: quantiles not positive and ordered: p50=%g p99=%g p999=%g",
					name, r.P50NsPerOp, r.P99NsPerOp, r.P999NsPerOp)
			}
			// Sanity ceiling: nothing in a 2s loopback burst should take a
			// minute.
			if r.P999NsPerOp > float64(time.Minute) {
				t.Errorf("%s: p999 %.0f ns is implausible for a loopback burst", name, r.P999NsPerOp)
			}
		}
		// The two views describe the same traffic: completed counts agree
		// (every client-completed request was observed by exactly one server
		// histogram).
		ci, si := rows["load-"+class+"/client"], rows["load-"+class+"/server"]
		if rep.Results[ci].Count != rep.Results[si].Count {
			t.Errorf("%s: client completed %d but server observed %d",
				class, rep.Results[ci].Count, rep.Results[si].Count)
		}
	}

	// Same seed, same plan: the -plan-only surface is byte-identical across
	// invocations and never contacts the server.
	planArgs := []string{"-plan-only", "-duration", "2s", "-rate", "50", "-zipf", "0.99", "-seed", "42"}
	plan1, err := exec.Command(loadBin, planArgs...).Output()
	if err != nil {
		t.Fatalf("aodload -plan-only: %v", err)
	}
	plan2, err := exec.Command(loadBin, planArgs...).Output()
	if err != nil {
		t.Fatalf("aodload -plan-only: %v", err)
	}
	if !bytes.Equal(plan1, plan2) {
		t.Error("same seed produced different request plans")
	}
	if len(bytes.TrimSpace(plan1)) == 0 {
		t.Error("empty request plan")
	}
}
