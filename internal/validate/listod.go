package validate

import (
	"sort"

	"aod/internal/dataset"
	"aod/internal/lis"
)

// cmpProj lexicographically compares the projections of two rows onto the
// attribute list cols, under the nested order of Def. 2.1 (which, on
// rank-encoded total orders, is exactly lexicographic comparison).
func cmpProj(t *dataset.Table, cols []int, ri, rj int32) int {
	for _, c := range cols {
		ranks := t.Column(c).Ranks()
		if ranks[ri] != ranks[rj] {
			if ranks[ri] < ranks[rj] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// ExactListOD verifies the list-based OD X ↦ Y (Def. 2.2) on the whole
// table: for all tuple pairs, s ⪯X t implies s ⪯Y t. It returns whether the
// OD holds and, when it fails, a witness pair of rows.
func ExactListOD(t *dataset.Table, x, y []int) (holds bool, witness [2]int32) {
	n := t.NumRows()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if c := cmpProj(t, x, order[i], order[j]); c != 0 {
			return c < 0
		}
		return cmpProj(t, y, order[i], order[j]) < 0
	})
	// Split check: equal X projections must have equal Y projections.
	// Swap check: across strictly increasing X, Y must be non-decreasing.
	var maxPrevRow int32 = -1 // row with lexicographically max Y in earlier X-groups
	var groupMaxRow int32 = -1
	for i := 0; i < n; i++ {
		row := order[i]
		newGroup := i == 0 || cmpProj(t, x, order[i-1], row) != 0
		if newGroup {
			if groupMaxRow >= 0 && (maxPrevRow < 0 || cmpProj(t, y, maxPrevRow, groupMaxRow) < 0) {
				maxPrevRow = groupMaxRow
			}
			groupMaxRow = -1
		} else if cmpProj(t, y, order[i-1], row) != 0 {
			return false, [2]int32{order[i-1], row} // split
		}
		if maxPrevRow >= 0 && cmpProj(t, y, row, maxPrevRow) < 0 {
			return false, [2]int32{maxPrevRow, row} // swap
		}
		if groupMaxRow < 0 || cmpProj(t, y, groupMaxRow, row) < 0 {
			groupMaxRow = row
		}
	}
	return true, [2]int32{-1, -1}
}

// ListAOD validates the list-based approximate OD X ↦ Y (footnote 1 of the
// paper): tuples are ordered ascending by X with ties broken by Y
// *descending*; the complement of one longest Y-non-decreasing subsequence
// (lexicographic) is then a minimal removal set eliminating both swaps and
// splits. Runtime O(|Y| · n log n).
func ListAOD(t *dataset.Table, x, y []int, opts Options) Result {
	n := t.NumRows()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if c := cmpProj(t, x, order[i], order[j]); c != 0 {
			return c < 0
		}
		return cmpProj(t, y, order[i], order[j]) > 0 // ties: Y descending
	})
	keep := lis.LNDSFunc(n, func(i, j int) int {
		return cmpProj(t, y, order[i], order[j])
	})
	removals := n - len(keep)
	var removed []int32
	if opts.CollectRemovals {
		k := 0
		for i := 0; i < n; i++ {
			if k < len(keep) && keep[k] == i {
				k++
				continue
			}
			removed = append(removed, order[i])
		}
	}
	return finish(removals, n, opts, false, removed)
}

// ExactListOC verifies the list-based order compatibility X ∼ Y (Def. 2.3):
// XY ↔ YX, i.e. there is a total order of the tuples sorted by both X and Y.
func ExactListOC(t *dataset.Table, x, y []int) bool {
	// X ∼ Y iff XY ↦ YX and YX ↦ XY. Equivalently, sorting by X with ties by
	// Y must leave Y-groups non-decreasing and vice versa; checking both
	// directions via ExactListOD on the concatenated lists is simplest and
	// matches Def. 2.3 literally.
	xy := append(append([]int{}, x...), y...)
	yx := append(append([]int{}, y...), x...)
	if ok, _ := ExactListOD(t, xy, yx); !ok {
		return false
	}
	ok, _ := ExactListOD(t, yx, xy)
	return ok
}
