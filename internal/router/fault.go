package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// FaultPlan is the router's fault-injection seam: every backend RPC —
// probes, submits, streams, uploads — passes through a wrapped
// http.RoundTripper that consults this ordered rule list first. Plans are
// deterministic by construction: each rule keeps its own count of matching
// RPCs and fires on a fixed window of them ([After, After+Count)), so the
// same plan against the same request sequence always fails the same calls.
// That makes chaos tests replayable: a failure found once reproduces every
// run, with no sleeps or race-prone kill timing involved.
//
// The zero plan (no rules) passes everything through untouched.
type FaultPlan struct {
	Rules []FaultRule `json:"rules"`
}

// FaultRule selects a slice of matching RPCs and an action to take on them.
type FaultRule struct {
	// Matchers; empty fields match anything.
	Replica string `json:"replica,omitempty"` // substring of the target URL (e.g. "127.0.0.1:8711")
	Method  string `json:"method,omitempty"`  // exact HTTP method
	Path    string `json:"path,omitempty"`    // request-path prefix (e.g. "/jobs")

	// Window over this rule's matching RPCs, 0-based: skip the first After,
	// then fault the next Count (Count 0 = every one after).
	After int `json:"after,omitempty"`
	Count int `json:"count,omitempty"`

	// Action is "error" (fail the RPC before any bytes move), "delay"
	// (sleep DelayMs, then proceed normally), or "cut" (let the response
	// start, then break the body after CutAfterBytes — the mid-stream
	// failure mode that polling clients never see but streams must survive).
	Action        string `json:"action"`
	DelayMs       int    `json:"delayMs,omitempty"`
	CutAfterBytes int64  `json:"cutAfterBytes,omitempty"`
}

func (r *FaultRule) matches(req *http.Request) bool {
	if r.Replica != "" && !strings.Contains(req.URL.String(), r.Replica) {
		return false
	}
	if r.Method != "" && req.Method != r.Method {
		return false
	}
	if r.Path != "" && !strings.HasPrefix(req.URL.Path, r.Path) {
		return false
	}
	return true
}

// validate rejects unknown actions at load time, not mid-chaos-run.
func (p *FaultPlan) validate() error {
	for i, r := range p.Rules {
		switch r.Action {
		case "error", "delay", "cut":
		default:
			return fmt.Errorf("fault plan: rule %d has unknown action %q (want error, delay, or cut)", i, r.Action)
		}
	}
	return nil
}

// LoadFaultPlan reads a JSON plan file ({"rules": [...]}).
func LoadFaultPlan(path string) (*FaultPlan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p FaultPlan
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("fault plan %s: %w", path, err)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// errInjected marks a router-injected fault; tests can distinguish it from
// organic failures, and it reads honestly in logs.
var errInjected = errors.New("fault: injected")

// transport wraps inner with the plan. Each call gets a fresh counter set,
// so two routers sharing one plan value don't interfere.
func (p *FaultPlan) transport(inner http.RoundTripper) http.RoundTripper {
	if p == nil || len(p.Rules) == 0 {
		return inner
	}
	return &faultTransport{inner: inner, plan: p, seen: make([]int, len(p.Rules))}
}

type faultTransport struct {
	inner http.RoundTripper
	plan  *FaultPlan

	mu   sync.Mutex
	seen []int // per-rule count of matching RPCs observed so far
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var act *FaultRule
	t.mu.Lock()
	for i := range t.plan.Rules {
		r := &t.plan.Rules[i]
		if !r.matches(req) {
			continue
		}
		n := t.seen[i]
		t.seen[i]++
		if n >= r.After && (r.Count == 0 || n < r.After+r.Count) {
			act = r
		}
		break // the first matching rule owns the RPC — keeps attribution deterministic
	}
	t.mu.Unlock()
	if act == nil {
		return t.inner.RoundTrip(req)
	}
	switch act.Action {
	case "delay":
		select {
		case <-time.After(time.Duration(act.DelayMs) * time.Millisecond):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)
	case "cut":
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &cutBody{rc: resp.Body, remaining: act.CutAfterBytes}
		return resp, nil
	default: // "error"
		return nil, fmt.Errorf("%w: %s %s", errInjected, req.Method, req.URL.Path)
	}
}

// cutBody forwards up to remaining bytes, then fails the read — the wire
// picture of a TCP connection dying mid-response.
type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, fmt.Errorf("%w: connection cut", errInjected)
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	if err == nil && c.remaining <= 0 {
		err = fmt.Errorf("%w: connection cut", errInjected)
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }
