package service

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aod"
)

// TestShardedServiceJobs runs the service with a loopback shard pool: jobs
// execute over the full wire protocol, reports match local execution, and
// /stats surfaces per-worker assignment counts.
func TestShardedServiceJobs(t *testing.T) {
	pool := aod.LoopbackShardPool(2)
	defer pool.Close()
	// ShardCostMin 1 forces the adaptive router to pick the shard pool even
	// for this test-sized dataset — the point here is the wire protocol, not
	// the routing policy.
	s := New(Config{Workers: 2, ShardPool: pool, ShardCostMin: 1})
	defer s.Close()
	local := New(Config{Workers: 1})
	defer local.Close()

	ds := multiLevelDataset(t, 500, 6)
	info, _, err := s.Registry().Add("d", ds)
	if err != nil {
		t.Fatal(err)
	}
	linfo, _, err := local.Registry().Add("d", ds)
	if err != nil {
		t.Fatal(err)
	}

	opts := aod.Options{Threshold: 0.1, IncludeOFDs: true}
	view, err := s.Submit(info.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded := waitState(t, s, view.ID, JobDone)
	lview, err := local.Submit(linfo.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain := waitState(t, local, lview.ID, JobDone)

	if sharded.Report == nil || plain.Report == nil {
		t.Fatal("missing report")
	}
	if !reflect.DeepEqual(sharded.Report.OCs, plain.Report.OCs) ||
		!reflect.DeepEqual(sharded.Report.OFDs, plain.Report.OFDs) {
		t.Errorf("sharded job report differs from local execution")
	}

	st := s.Stats()
	if len(st.Shards) != 2 {
		t.Fatalf("stats should list 2 shard workers, got %+v", st.Shards)
	}
	var assigned uint64
	for _, w := range st.Shards {
		assigned += w.AssignedTasks
		if !w.Healthy {
			t.Errorf("loopback worker %s unhealthy: %+v", w.Addr, w)
		}
	}
	if assigned == 0 {
		t.Error("no tasks recorded as assigned to shard workers")
	}
}

// TestQueueAgingLargeJobOvertakesSmallFlood pins the starvation escape hatch:
// with one worker pinned, a large job that has aged past MaxQueueWait runs
// before a flood of fresh small jobs, even though every small job is cheaper.
func TestQueueAgingLargeJobOvertakesSmallFlood(t *testing.T) {
	entered := make(chan string, 16)
	release := make(chan struct{})
	var clockOffset atomic.Int64
	cfg := Config{
		Workers:      1,
		MaxQueueWait: time.Minute,
		now:          func() time.Time { return time.Now().Add(time.Duration(clockOffset.Load())) },
	}
	var once sync.Once
	cfg.runGate = func(j *Job) {
		entered <- j.id
		once.Do(func() { <-release }) // only the first (blocker) job stalls
	}
	s := New(cfg)
	defer s.Close()

	blockerInfo, _, err := s.Registry().Add("blocker", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	largeInfo, _, err := s.Registry().Add("large", multiLevelDataset(t, 3000, 8))
	if err != nil {
		t.Fatal(err)
	}
	smallInfo, _, err := s.Registry().Add("small", multiLevelDataset(t, 40, 3))
	if err != nil {
		t.Fatal(err)
	}

	blocker, err := s.Submit(blockerInfo.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	first := <-entered // the blocker owns the worker and is stalled on the gate

	large, err := s.Submit(largeInfo.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// The large job has now been "waiting" two minutes; the small jobs below
	// are admitted against the same shifted clock, so only the large job's
	// age (measured from its real admission stamp) crosses MaxQueueWait...
	clockOffset.Store(int64(2 * time.Minute))
	// ...and a flood of fresh cheap jobs — which the pure cost order would
	// all run first — cannot push it back any further.
	var smalls []string
	for i := 0; i < 3; i++ {
		v, err := s.Submit(smallInfo.ID, aod.Options{Threshold: 0.1 + float64(i)/1000})
		if err != nil {
			t.Fatal(err)
		}
		smalls = append(smalls, v.ID)
	}
	close(release)

	second := <-entered
	if first != blocker.ID || second != large.ID {
		t.Fatalf("execution order [%s %s ...], want the aged large job %s right after the blocker %s (smalls %v)",
			first, second, large.ID, blocker.ID, smalls)
	}
	waitState(t, s, large.ID, JobDone)
	for _, id := range smalls {
		waitState(t, s, id, JobDone)
	}
}

// TestQueueAgingDisabled pins that negative MaxQueueWait restores pure
// cost-order scheduling.
func TestQueueAgingDisabled(t *testing.T) {
	entered := make(chan string, 16)
	release := make(chan struct{})
	var clockOffset atomic.Int64
	cfg := Config{
		Workers:      1,
		MaxQueueWait: -1,
		now:          func() time.Time { return time.Now().Add(time.Duration(clockOffset.Load())) },
	}
	var once sync.Once
	cfg.runGate = func(j *Job) {
		entered <- j.id
		once.Do(func() { <-release })
	}
	s := New(cfg)
	defer s.Close()

	blockerInfo, _, _ := s.Registry().Add("blocker", smallDataset(t))
	largeInfo, _, _ := s.Registry().Add("large", multiLevelDataset(t, 3000, 8))
	smallInfo, _, _ := s.Registry().Add("small", multiLevelDataset(t, 40, 3))

	blocker, err := s.Submit(blockerInfo.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	large, err := s.Submit(largeInfo.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	clockOffset.Store(int64(2 * time.Minute))
	small, err := s.Submit(smallInfo.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	second := <-entered
	if second != small.ID {
		t.Fatalf("with aging disabled the cheap job should still overtake: got %s, want %s (blocker %s, large %s)",
			second, small.ID, blocker.ID, large.ID)
	}
	waitState(t, s, large.ID, JobDone)
}
