// Command aodvalidate validates a single (approximate) order-dependency
// candidate against a CSV file, reporting the exact approximation factor and
// the minimal removal set.
//
// Usage:
//
//	aodvalidate -a colA -b colB [-context x,y] [-threshold 0.1]
//	            [-kind oc|od|ofd] [-compare] file.csv
//
// -kind oc  validates "context: a ∼ b" (order compatibility; default)
// -kind od  validates "context: a ↦ b" (order dependency: OC + FD)
// -kind ofd validates "context: [] ↦ a" (constancy; -b ignored)
// -compare additionally runs the legacy iterative validator on the same
// candidate to expose its overestimation (Exp-4 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aod"
)

func main() {
	a := flag.String("a", "", "left attribute")
	b := flag.String("b", "", "right attribute")
	context := flag.String("context", "", "comma-separated context columns")
	threshold := flag.Float64("threshold", 0.10, "approximation threshold ε")
	kind := flag.String("kind", "oc", "candidate kind: oc, od, ofd")
	compare := flag.Bool("compare", false, "also run the legacy iterative validator")
	maxRows := flag.Int("max-rows", 0, "limit CSV rows read")
	flag.Parse()

	if flag.NArg() != 1 || *a == "" || (*kind != "ofd" && *b == "") {
		fmt.Fprintln(os.Stderr, "usage: aodvalidate -a colA -b colB [flags] file.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ds, err := aod.ReadCSVFile(flag.Arg(0), aod.CSVOptions{MaxRows: *maxRows})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodvalidate:", err)
		os.Exit(1)
	}
	var ctx []string
	if *context != "" {
		ctx = strings.Split(*context, ",")
	}

	var v aod.Validation
	var desc string
	switch strings.ToLower(*kind) {
	case "oc":
		v, err = aod.ValidateOC(ds, ctx, *a, *b, *threshold)
		desc = fmt.Sprintf("{%s}: %s ∼ %s", strings.Join(ctx, ","), *a, *b)
	case "od":
		v, err = aod.ValidateOD(ds, ctx, *a, *b, *threshold)
		desc = fmt.Sprintf("{%s}: %s ↦ %s", strings.Join(ctx, ","), *a, *b)
	case "ofd":
		v, err = aod.ValidateOFD(ds, ctx, *a, *threshold)
		desc = fmt.Sprintf("{%s}: [] ↦ %s", strings.Join(ctx, ","), *a)
	default:
		fmt.Fprintf(os.Stderr, "aodvalidate: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodvalidate:", err)
		os.Exit(1)
	}

	status := "INVALID"
	if v.Valid {
		status = "valid"
	}
	fmt.Printf("%s  (ε=%.2f)\n", desc, *threshold)
	fmt.Printf("  %s: e = %.4f (%d of %d rows in minimal removal set)\n",
		status, v.Error, v.Removals, ds.NumRows())
	if len(v.RemovalRows) > 0 {
		show := v.RemovalRows
		if len(show) > 25 {
			show = show[:25]
		}
		fmt.Printf("  removal rows (first %d): %v\n", len(show), show)
	}

	if *compare && strings.ToLower(*kind) == "oc" {
		iv, err := aod.ValidateOCIterative(ds, ctx, *a, *b, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aodvalidate:", err)
			os.Exit(1)
		}
		fmt.Printf("  iterative (legacy): e = %.4f (%d removals)", iv.Error, iv.Removals)
		if iv.Removals > v.Removals {
			fmt.Printf("  — overestimates the minimal removal set by %d rows", iv.Removals-v.Removals)
		}
		fmt.Println()
		if v.Valid && !iv.Valid {
			fmt.Println("  → the legacy validator would WRONGLY reject this candidate")
		}
	}
}
