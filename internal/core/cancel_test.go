package core

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestDiscoverContextPreCanceled: an already-canceled context aborts before
// any level completes, mirroring the TimeLimit contract (partial result,
// Canceled set, nil error).
func TestDiscoverContextPreCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := randomTable(rng, 200, 5, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DiscoverContext(ctx, tbl, Config{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Canceled {
		t.Error("Stats.Canceled not set for a pre-canceled context")
	}
	if res.Stats.NodesProcessed != 0 {
		t.Errorf("processed %d nodes under a pre-canceled context, want 0", res.Stats.NodesProcessed)
	}
}

// TestDiscoverContextCancelMidRun cancels while discovery is in flight and
// checks the run stops early with partial results, in both the sequential
// and the parallel engines.
func TestDiscoverContextCancelMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := randomTable(rng, 1500, 7, 800)
	full, err := Discover(tbl, Config{Threshold: 0.4, Validator: ValidatorIterative})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel at a tenth of the measured full runtime so the test scales
	// with machine speed instead of assuming a fixed duration.
	delay := full.Stats.TotalTime / 10
	if delay <= 0 {
		delay = time.Millisecond
	}
	run := func(name string, f func(ctx context.Context) (*Result, error)) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		res, err := f(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Stats.Canceled && res.Stats.NodesProcessed >= full.Stats.NodesProcessed {
			// The run outpaced the cancel goroutine entirely; no signal
			// either way on a machine this fast relative to the scheduler.
			t.Skipf("%s: run finished before the %v cancel fired", name, delay)
		}
		if !res.Stats.Canceled {
			t.Errorf("%s: Stats.Canceled not set", name)
		}
		if res.Stats.NodesProcessed >= full.Stats.NodesProcessed {
			t.Errorf("%s: processed %d nodes, full run processed %d — cancellation did not stop early",
				name, res.Stats.NodesProcessed, full.Stats.NodesProcessed)
		}
	}
	run("sequential", func(ctx context.Context) (*Result, error) {
		return DiscoverContext(ctx, tbl, Config{Threshold: 0.4, Validator: ValidatorIterative})
	})
	run("parallel", func(ctx context.Context) (*Result, error) {
		return DiscoverParallelContext(ctx, tbl, Config{Threshold: 0.4, Validator: ValidatorIterative}, 4)
	})
}

// TestDiscoverContextBackgroundMatchesDiscover: a never-canceled context
// changes nothing about the result.
func TestDiscoverContextBackgroundMatchesDiscover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := randomTable(rng, 120, 5, 4)
	cfg := Config{Threshold: 0.15, IncludeOFDs: true}
	want, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DiscoverContext(context.Background(), tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Canceled {
		t.Error("background context marked canceled")
	}
	if len(got.OCs) != len(want.OCs) || len(got.OFDs) != len(want.OFDs) {
		t.Errorf("results differ: %d/%d OCs, %d/%d OFDs",
			len(got.OCs), len(want.OCs), len(got.OFDs), len(want.OFDs))
	}
}
