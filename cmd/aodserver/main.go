// Command aodserver serves (approximate) order-dependency discovery as an
// async HTTP JSON service: upload datasets once, submit discovery jobs
// against them, poll for results, cancel long runs. Identical re-submissions
// (same dataset content, same effective options) are served from an LRU
// result cache without re-validating.
//
// Usage:
//
//	aodserver [-addr :8711] [-workers N | -workers host:port,...] [-queue N]
//	          [-cache N] [-max-datasets N] [-max-jobs N] [-max-upload BYTES]
//	          [-data-dir DIR] [-max-report-bytes N] [-max-queue-wait D]
//	          [-straggler-after D] [-pprof-addr ADDR]
//	          [-adaptive] [-serial-cost-max N] [-shard-cost-min N]
//	          [-shard-quantum N]
//
// -workers accepts either an integer (local discovery worker-pool size, the
// default GOMAXPROCS) or a comma-separated list of aodworker addresses: then
// each job's lattice levels are sliced across those worker processes
// (datasets ship to each worker once, cached by content fingerprint), with
// per-shard timeouts, straggler re-dispatch, and local fallback — a dead
// worker slows jobs down instead of failing them. Per-worker health and
// assignment counts appear in GET /stats under "shards".
//
// Executor selection is adaptive by default: each job's work estimate
// (rows × cols × lattice levels) routes it to the serial in-process executor
// (at or below -serial-cost-max), the local worker pool (mid-range), or the
// shard pool (at or above -shard-cost-min, when -workers lists addresses).
// All three produce identical reports; only latency differs. -adaptive=false
// restores the pre-adaptive routing (everything sharded when a pool is
// configured). Sharded jobs additionally size their worker fan-out from the
// same estimate — one worker per -shard-quantum of work, so small sharded
// jobs skip the per-worker partition-duplication tax. Routing counts appear
// in /stats and /metrics as aod_jobs_routed_total{executor=...}.
//
// With -data-dir the server is durable: uploaded datasets and completed
// reports are written through to DIR (atomic write-then-rename, corrupt
// files quarantined rather than fatal) and recovered on restart, so a
// restarted server lists every previously uploaded dataset and serves
// previously computed reports without re-running discovery. Without the
// flag all state is in-memory, exactly as before. -max-report-bytes bounds
// the persisted report tier: past the budget, the least recently used
// report files are deleted (datasets are never GC'd).
//
// Jobs are scheduled by estimated size (rows × cols × lattice levels),
// smallest first — a cheap probe is not stuck behind a wide-table crawl —
// and running jobs stream per-level partial results: GET /jobs/{id} shows
// the latest partial report, GET /jobs/{id}/stream is a live NDJSON feed.
//
// Endpoints (see the README for a curl walkthrough):
//
//	POST   /datasets        upload a CSV body, returns the dataset record
//	GET    /datasets        list datasets
//	GET    /datasets/{id}   one dataset record
//	POST   /jobs            submit {"datasetId": ..., "options": {...}}
//	GET    /jobs            list jobs
//	GET    /jobs/{id}       job status; partial report while running, report once done
//	GET    /jobs/{id}/stream NDJSON stream of per-level progress events
//	GET    /jobs/{id}/trace  the job's span tree (queue wait, stages, per-level, shard RPCs)
//	DELETE /jobs/{id}       cancel a job
//	GET    /healthz         liveness probe
//	GET    /stats           counters (jobs, cache hits/misses, in-flight, ...)
//	GET    /metrics         Prometheus text exposition (latency histograms included)
//
// With -pprof-addr the runtime profiles (CPU, heap, goroutine, ...) are
// served on a second, private listener at /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aod"
	"aod/internal/service"
	"aod/internal/store"
)

func main() {
	addr := flag.String("addr", ":8711", "listen address (host:port; port 0 picks an ephemeral port)")
	workersFlag := flag.String("workers", "", "an integer sizes the local discovery worker pool (default GOMAXPROCS); a comma-separated host:port list instead slices jobs across those aodworker processes")
	queue := flag.Int("queue", 64, "job queue depth (backpressure bound; negative = unbounded)")
	cacheSize := flag.Int("cache", 128, "result-cache capacity in reports (negative disables)")
	maxDatasets := flag.Int("max-datasets", 256, "dataset registry bound (negative = unbounded)")
	maxJobs := flag.Int("max-jobs", 1024, "retained job-record bound; oldest finished jobs are evicted (negative = unbounded)")
	maxUpload := flag.Int64("max-upload", service.DefaultMaxUploadBytes, "maximum CSV upload size in bytes")
	dataDir := flag.String("data-dir", "", "persist datasets and reports under this directory (empty = in-memory only)")
	maxReportBytes := flag.Int64("max-report-bytes", 0, "report-store disk budget in bytes; least recently used reports are evicted past it (0 = unbounded; needs -data-dir)")
	straggler := flag.Duration("straggler-after", 15*time.Second, "re-dispatch a shard slice not answered after this long (sharded mode; negative disables)")
	adaptive := flag.Bool("adaptive", true, "pick each job's executor (serial/pool/sharded) from its work estimate; false pins the pre-adaptive routing (sharded whenever -workers lists addresses)")
	serialCostMax := flag.Int64("serial-cost-max", service.DefaultSerialCostMax, "adaptive routing: run jobs with work estimate (rows×cols×levels) at or below this serially (negative = no serial tier)")
	shardCostMin := flag.Int64("shard-cost-min", service.DefaultShardCostMin, "adaptive routing: dispatch jobs with work estimate at or above this to the shard pool (negative = shard everything)")
	shardQuantum := flag.Int64("shard-quantum", 0, "sharded jobs engage one worker per this much estimated work, bounded by the pool size (0 = built-in default; negative = always the full pool)")
	partitionCache := flag.Int64("partition-cache-bytes", service.DefaultPartitionCacheBytes, "byte budget of the cross-job partition cache and shared arena; repeat jobs over a registered dataset skip cold-start partitioning (negative disables)")
	maxQueueWait := flag.Duration("max-queue-wait", time.Minute, "age bound for cost-ordered scheduling: a job queued this long runs next regardless of size (negative disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it off public interfaces)")
	peersFlag := flag.String("peers", "", "comma-separated base URLs of replica aodservers to ask for cached reports before recomputing (result-cache peering)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT: flip /healthz unready, refuse new jobs, and finish in-flight jobs for up to this long before exiting")
	flag.Parse()

	// -workers is polymorphic: "-workers 4" sizes the local pool (the
	// historical meaning), "-workers host:a,host:b" shards across aodworker
	// processes instead.
	workers := runtime.GOMAXPROCS(0)
	var shardAddrs []string
	if *workersFlag != "" {
		if n, err := strconv.Atoi(*workersFlag); err == nil {
			workers = n
		} else {
			for _, a := range strings.Split(*workersFlag, ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					continue
				}
				// Reject early rather than starting a server that silently
				// fails every dial (e.g. a typo'd pool size like "1O").
				if _, _, err := net.SplitHostPort(a); err != nil {
					fmt.Fprintf(os.Stderr, "aodserver: -workers %q is neither a pool size nor a host:port list (%v)\n", *workersFlag, err)
					os.Exit(2)
				}
				shardAddrs = append(shardAddrs, a)
			}
			if len(shardAddrs) == 0 {
				fmt.Fprintf(os.Stderr, "aodserver: -workers %q is neither a pool size nor an address list\n", *workersFlag)
				os.Exit(2)
			}
		}
	}

	var st *store.Store
	if *dataDir != "" {
		var err error
		if st, err = store.Open(*dataDir); err != nil {
			fmt.Fprintln(os.Stderr, "aodserver:", err)
			os.Exit(1)
		}
		st.SetMaxReportBytes(*maxReportBytes)
	} else if *maxReportBytes > 0 {
		fmt.Fprintln(os.Stderr, "aodserver: -max-report-bytes requires -data-dir")
		os.Exit(2)
	}
	// One registry serves GET /metrics for both the job service (aod_jobs_*,
	// aod_job_seconds, ...) and the shard pool (aod_shard_*).
	metrics := aod.NewMetricsRegistry()
	var pool *aod.ShardPool
	if len(shardAddrs) > 0 {
		pool = aod.DialShardPool(shardAddrs, aod.ShardPoolOptions{
			StragglerAfter: *straggler,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "aodserver: "+format+"\n", args...)
			},
			Metrics: metrics,
		})
		defer pool.Close()
	}
	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	svc := service.New(service.Config{
		Workers:       workers,
		QueueDepth:    *queue,
		CacheSize:     *cacheSize,
		MaxDatasets:   *maxDatasets,
		MaxJobHistory: *maxJobs,
		MaxQueueWait:  *maxQueueWait,
		Store:         st,
		ShardPool:     pool,
		Metrics:       metrics,
		Peers:         peers,

		DisableAdaptive:  !*adaptive,
		SerialCostMax:    *serialCostMax,
		ShardCostMin:     *shardCostMin,
		ShardWorkQuantum: *shardQuantum,

		PartitionCacheBytes: *partitionCache,
	})
	handler := service.NewHandler(svc, service.HandlerConfig{MaxUploadBytes: *maxUpload})

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aodserver: pprof:", err)
			os.Exit(1)
		}
		fmt.Printf("aodserver pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() { _ = http.Serve(pln, pprofMux()) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodserver:", err)
		os.Exit(1)
	}
	// The resolved address matters when port 0 was requested.
	fmt.Printf("aodserver listening on %s (%d workers, queue %d, cache %d)\n",
		ln.Addr(), workers, *queue, *cacheSize)
	if st != nil {
		fmt.Printf("aodserver persisting to %s (%d datasets recovered)\n",
			st.Dir(), len(st.Datasets()))
	}
	if pool != nil {
		fmt.Printf("aodserver sharding across %d workers: %s\n",
			len(shardAddrs), strings.Join(shardAddrs, ", "))
	}
	if len(peers) > 0 {
		fmt.Printf("aodserver peering with %d replicas: %s\n",
			len(peers), strings.Join(peers, ", "))
	}

	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		// Graceful drain, not a listener slam: flip /healthz unready (a
		// router stops sending work within one probe), refuse new jobs with
		// 503, let in-flight and queued jobs finish up to -drain-timeout,
		// and only then stop serving — so reads and streams attached to
		// finishing jobs complete normally.
		fmt.Printf("aodserver: %s — draining (timeout %s)\n", s, *drainTimeout)
		svc.BeginDrain()
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		if err := svc.WaitIdle(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "aodserver: drain timeout — abandoning in-flight jobs")
		}
		cancelDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "aodserver: shutdown:", err)
		}
		svc.Close()
		fmt.Println("aodserver: drained, exiting")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "aodserver:", err)
			svc.Close()
			os.Exit(1)
		}
	}
}

// pprofMux exposes the runtime profiles on a dedicated mux rather than
// http.DefaultServeMux, so nothing else ever leaks onto the pprof port.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
