package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadJSON reads a BENCH_<n>.json snapshot written by RunJSON.
func LoadJSON(path string) (JSONReport, error) {
	var rep JSONReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("bench: reading snapshot: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: decoding %s: %w", path, err)
	}
	if rep.Schema != JSONSchema {
		return rep, fmt.Errorf("bench: %s has schema %q, want %q", path, rep.Schema, JSONSchema)
	}
	return rep, nil
}

// CompareReports diffs current against baseline workload by workload (joined
// on name, the cross-snapshot stable key) and returns one description per
// regression: a named workload whose ns/op — or, when both snapshots carry a
// tail reading, whose p99 ns/op — grew by more than tolerance (0.20 = fail
// past +20%). Gating the tail alongside the median matters for service-load
// snapshots, where a queueing pathology can leave the median flat while p99
// explodes. Improvements and workloads present in only one snapshot never
// fail — new workloads must be able to land, and retired ones to leave — but
// missing baseline workloads are reported so a rename cannot silently drop a
// gate.
func CompareReports(baseline, current JSONReport, tolerance float64) (regressions, notes []string) {
	cur := make(map[string]JSONResult, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, base := range baseline.Results {
		now, ok := cur[base.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("workload %q in baseline but not measured now", base.Name))
			continue
		}
		if r := gateMetric(base.Name, "ns/op", base.NsPerOp, now.NsPerOp, tolerance); r != "" {
			regressions = append(regressions, r)
		}
		if r := gateMetric(base.Name, "p99 ns/op", base.P99NsPerOp, now.P99NsPerOp, tolerance); r != "" {
			regressions = append(regressions, r)
		}
	}
	return regressions, notes
}

// gateMetric applies the tolerance to one (baseline, current) metric pair; a
// non-positive baseline cannot gate anything (zero means "not recorded" for
// the optional tail fields, and a zero median has nothing to divide by).
func gateMetric(name, metric string, base, now, tolerance float64) string {
	if base <= 0 {
		return ""
	}
	ratio := now / base
	if ratio <= 1+tolerance {
		return ""
	}
	return fmt.Sprintf("%s: %.0f %s vs baseline %.0f %s (%+.1f%%, tolerance %+.0f%%)",
		name, now, metric, base, metric, (ratio-1)*100, tolerance*100)
}
