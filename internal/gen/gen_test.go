package gen

import (
	"reflect"
	"testing"

	"aod/internal/partition"
	"aod/internal/validate"
)

func TestFlightShapeAndDeterminism(t *testing.T) {
	t1 := Flight(FlightConfig{Rows: 500, Attrs: 10, Seed: 1})
	if t1.NumRows() != 500 || t1.NumCols() != 10 {
		t.Fatalf("shape = %d×%d", t1.NumRows(), t1.NumCols())
	}
	t2 := Flight(FlightConfig{Rows: 500, Attrs: 10, Seed: 1})
	for c := 0; c < t1.NumCols(); c++ {
		if !reflect.DeepEqual(t1.Column(c).Ranks(), t2.Column(c).Ranks()) {
			t.Fatalf("column %d not deterministic", c)
		}
	}
	t3 := Flight(FlightConfig{Rows: 500, Attrs: 10, Seed: 2})
	same := true
	for c := 0; c < t1.NumCols() && same; c++ {
		same = reflect.DeepEqual(t1.Column(c).Ranks(), t3.Column(c).Ranks())
	}
	if same {
		t.Error("different seeds should give different data")
	}
}

func TestFlightAttrBounds(t *testing.T) {
	if got := Flight(FlightConfig{Rows: 10, Attrs: 0, Seed: 1}).NumCols(); got != 10 {
		t.Errorf("default attrs = %d, want 10", got)
	}
	if got := Flight(FlightConfig{Rows: 10, Attrs: 99, Seed: 1}).NumCols(); got != 35 {
		t.Errorf("capped attrs = %d, want 35", got)
	}
	if got := Flight(FlightConfig{Rows: 10, Attrs: 1, Seed: 1}).NumCols(); got != 2 {
		t.Errorf("floor attrs = %d, want 2", got)
	}
	if got := Flight(FlightConfig{Rows: 10, Attrs: 35, Seed: 1}).NumCols(); got != 35 {
		t.Errorf("full attrs = %d, want 35", got)
	}
}

func TestNCVoterShape(t *testing.T) {
	tbl := NCVoter(NCVoterConfig{Rows: 300, Attrs: 30, Seed: 5})
	if tbl.NumRows() != 300 || tbl.NumCols() != 30 {
		t.Fatalf("shape = %d×%d", tbl.NumRows(), tbl.NumCols())
	}
	if got := NCVoter(NCVoterConfig{Rows: 10, Seed: 5}).NumCols(); got != 10 {
		t.Errorf("default attrs = %d, want 10", got)
	}
}

// Planted approximate OCs must land near their configured exception rates.
func TestFlightPlantedAOCErrors(t *testing.T) {
	tbl := Flight(FlightConfig{Rows: 4000, Attrs: 10, Seed: 7})
	v := validate.New()
	ctx := partition.Universe(tbl.NumRows())

	check := func(aName, bName string, lo, hi float64) {
		t.Helper()
		a := tbl.Column(tbl.ColumnIndex(aName))
		b := tbl.Column(tbl.ColumnIndex(bName))
		r := v.OptimalAOC(ctx, a, b, validate.Options{Threshold: 1})
		if r.Error < lo || r.Error > hi {
			t.Errorf("%s ∼ %s error = %.4f, want in [%.2f, %.2f]", aName, bName, r.Error, lo, hi)
		}
	}
	// ≈8% exceptions planted (minimal removal can be slightly below the
	// corruption rate because some corruptions collide or stay in order).
	check("origin", "originIATA", 0.03, 0.09)
	// ≈9.5% exceptions planted.
	check("lateAircraftDelay", "arrivalDelay", 0.04, 0.11)
	// Exact pair.
	check("distance", "airTime", 0, 0)
	// flightID ↦ flightDate holds exactly (monotone bucketing).
	if ok, _ := v.ExactOC(ctx,
		tbl.Column(tbl.ColumnIndex("flightID")),
		tbl.Column(tbl.ColumnIndex("flightDate"))); !ok {
		t.Error("flightID ∼ flightDate should hold exactly")
	}
}

func TestNCVoterPlantedAOCErrors(t *testing.T) {
	tbl := NCVoter(NCVoterConfig{Rows: 4000, Attrs: 10, Seed: 8})
	v := validate.New()
	ctx := partition.Universe(tbl.NumRows())
	check := func(aName, bName string, lo, hi float64) {
		t.Helper()
		a := tbl.Column(tbl.ColumnIndex(aName))
		b := tbl.Column(tbl.ColumnIndex(bName))
		r := v.OptimalAOC(ctx, a, b, validate.Options{Threshold: 1})
		if r.Error < lo || r.Error > hi {
			t.Errorf("%s ∼ %s error = %.4f, want in [%.2f, %.2f]", aName, bName, r.Error, lo, hi)
		}
	}
	check("municipality", "municipalityAbbrv", 0.08, 0.22)
	check("streetAddress", "mailAddress", 0.08, 0.20)
	// FD municipality → zip planted exactly.
	muniPart := partition.Single(tbl.Column(tbl.ColumnIndex("municipality")))
	if !validate.ExactOFD(muniPart, tbl.Column(tbl.ColumnIndex("zip"))) {
		t.Error("{municipality}: [] ↦ zip should hold")
	}
	// municipality ↦ county exact (bucketing).
	if ok, _ := v.ExactOC(ctx,
		tbl.Column(tbl.ColumnIndex("municipality")),
		tbl.Column(tbl.ColumnIndex("county"))); !ok {
		t.Error("municipality ∼ county should hold exactly")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	if tbl.NumRows() != 9 || tbl.NumCols() != 7 {
		t.Fatalf("Table 1 shape = %d×%d", tbl.NumRows(), tbl.NumCols())
	}
	v := validate.New()
	ctx := partition.Universe(9)
	r := v.OptimalAOC(ctx, tbl.Column(tbl.ColumnIndex("sal")), tbl.Column(tbl.ColumnIndex("tax")),
		validate.Options{Threshold: 1})
	if r.Removals != 4 {
		t.Errorf("sal ∼ tax minimal removal = %d, want 4 (Example 2.15)", r.Removals)
	}
}

func TestCorrelatedPair(t *testing.T) {
	tbl := CorrelatedPair(2000, 0.1, 3)
	if tbl.NumRows() != 2000 || tbl.NumCols() != 2 {
		t.Fatalf("shape = %d×%d", tbl.NumRows(), tbl.NumCols())
	}
	v := validate.New()
	r := v.OptimalAOC(partition.Universe(2000), tbl.Column(0), tbl.Column(1),
		validate.Options{Threshold: 1})
	if r.Error < 0.03 || r.Error > 0.12 {
		t.Errorf("correlated pair error = %.4f, want ≈0.1-ish", r.Error)
	}
	exact := CorrelatedPair(1000, 0, 3)
	re := v.OptimalAOC(partition.Universe(1000), exact.Column(0), exact.Column(1),
		validate.Options{Threshold: 0})
	if !re.Valid {
		t.Error("frac=0 pair should be exactly order compatible")
	}
}

func TestUniform(t *testing.T) {
	tbl := Uniform(100, 5, 10, 9)
	if tbl.NumRows() != 100 || tbl.NumCols() != 5 {
		t.Fatalf("shape = %d×%d", tbl.NumRows(), tbl.NumCols())
	}
	t2 := Uniform(100, 5, 10, 9)
	for c := 0; c < 5; c++ {
		if !reflect.DeepEqual(tbl.Column(c).Ranks(), t2.Column(c).Ranks()) {
			t.Fatal("Uniform not deterministic")
		}
	}
}
