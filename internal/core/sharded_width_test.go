package core

import "testing"

// TestShardWidthCap pins the adaptive fan-out policy: one engaged worker per
// work quantum, at least one, uncapped when the quantum is disabled.
func TestShardWidthCap(t *testing.T) {
	const noCap = int(^uint(0) >> 1)
	cases := []struct {
		name          string
		cost, quantum int64
		want          int
	}{
		{"tiny job engages one worker", 500_000, DefaultShardWorkQuantum, 1},
		{"one quantum is one worker", DefaultShardWorkQuantum, DefaultShardWorkQuantum, 1},
		{"two quanta are two workers", 2 * DefaultShardWorkQuantum, DefaultShardWorkQuantum, 2},
		{"just short of two quanta stays at one", 2*DefaultShardWorkQuantum - 1, DefaultShardWorkQuantum, 1},
		{"50k-row 10-attr job engages one worker", 50_000 * 10 * 10, DefaultShardWorkQuantum, 1},
		{"zero cost still engages one worker", 0, DefaultShardWorkQuantum, 1},
		{"negative quantum disables the cap", 10, -1, noCap},
		{"zero quantum disables the cap", 10, 0, noCap}, // ShardedQuantum maps 0 to the default before this
		{"huge cost saturates instead of overflowing", int64(^uint64(0) >> 1), 1, noCap},
	}
	for _, tc := range cases {
		if got := shardWidthCap(tc.cost, tc.quantum); got != tc.want {
			t.Errorf("%s: shardWidthCap(%d, %d) = %d, want %d", tc.name, tc.cost, tc.quantum, got, tc.want)
		}
	}
}
