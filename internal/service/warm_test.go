package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"aod"
)

// timelessReportJSON canonicalizes a report for byte-identity comparison,
// dropping the timing fields that legitimately differ between runs.
func timelessReportJSON(t *testing.T, rep *aod.Report) string {
	t.Helper()
	r := *rep
	r.Stats.ValidationTime = 0
	r.Stats.PartitionTime = 0
	r.Stats.TotalTime = 0
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// submitAndWait runs one job to completion and returns its report.
func submitAndWait(t *testing.T, s *Service, datasetID string, opts aod.Options) *aod.Report {
	t.Helper()
	v, err := s.Submit(datasetID, opts)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, v.ID, JobDone)
	if done.Report == nil {
		t.Fatalf("done job %s has no report", v.ID)
	}
	return done.Report
}

// TestWarmRepeatSkipsPrepare pins the server half of cross-job partition
// memoization: the first job over a dataset prepares its partitions cold and
// admits them to the cache (one miss); every repeat job with different
// options — a distinct result-cache key, so it genuinely validates — reuses
// them (hits move, misses do not), which is exactly the "repeat job skips
// core.Prepare" contract: a hit hands the pipeline prebuilt singles and
// buildSingles short-circuits.
func TestWarmRepeatSkipsPrepare(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	info, _, err := s.Registry().Add("employees", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}

	submitAndWait(t, s, info.ID, aod.Options{Threshold: 0, IncludeOFDs: true})
	st := s.Stats()
	if st.PartitionCacheMisses != 1 || st.PartitionCacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/1", st.PartitionCacheHits, st.PartitionCacheMisses)
	}
	if st.PartitionCacheEntries != 1 || st.PartitionCacheBytes <= 0 {
		t.Fatalf("cold run did not admit prepared partitions: entries=%d bytes=%d",
			st.PartitionCacheEntries, st.PartitionCacheBytes)
	}

	submitAndWait(t, s, info.ID, aod.Options{Threshold: 0.12, IncludeOFDs: true})
	submitAndWait(t, s, info.ID, aod.Options{Threshold: 0.3})
	st = s.Stats()
	if st.PartitionCacheMisses != 1 {
		t.Errorf("repeat jobs re-prepared partitions: misses=%d, want 1", st.PartitionCacheMisses)
	}
	if st.PartitionCacheHits != 2 {
		t.Errorf("repeat jobs missed the partition cache: hits=%d, want 2", st.PartitionCacheHits)
	}
}

// TestWarmMatchesColdReports pins result identity across the warm seam: a
// server with the partition cache disabled and one with it enabled produce
// byte-identical reports for the same submissions, warm or cold.
func TestWarmMatchesColdReports(t *testing.T) {
	cold := New(Config{Workers: 1, PartitionCacheBytes: -1})
	defer cold.Close()
	warm := New(Config{Workers: 1})
	defer warm.Close()

	ds := slowDataset(t, 300, 5)
	coldInfo, _, err := cold.Registry().Add("d", ds)
	if err != nil {
		t.Fatal(err)
	}
	warmInfo, _, err := warm.Registry().Add("d", ds)
	if err != nil {
		t.Fatal(err)
	}

	for _, th := range []float64{0, 0.1, 0.1, 0.25} { // 0.1 twice: warm repeat
		opts := aod.Options{Threshold: th, IncludeOFDs: true, CollectRemovalSets: true}
		cr := submitAndWait(t, cold, coldInfo.ID, opts)
		wr := submitAndWait(t, warm, warmInfo.ID, opts)
		if cj, wj := timelessReportJSON(t, cr), timelessReportJSON(t, wr); cj != wj {
			t.Fatalf("threshold %v: warm report diverges from cold:\ncold: %s\nwarm: %s", th, cj, wj)
		}
	}
	if st := cold.Stats(); st.PartitionCacheHits != 0 || st.PartitionCacheMisses != 0 || st.PartitionCacheBytes != 0 {
		t.Errorf("disabled partition cache moved: %+v", st)
	}
	if st := warm.Stats(); st.PartitionCacheHits == 0 {
		t.Error("warm server never hit its partition cache")
	}
}

// TestConcurrentWarmJobsShareCache races many distinct jobs over one dataset
// through the shared prepared partitions and arena — the cross-job safety
// claim the Share seam makes, checked under -race. Distinct thresholds keep
// every job a real validation run (no result-cache or in-flight sharing).
func TestConcurrentWarmJobsShareCache(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Close()
	ds := slowDataset(t, 200, 4)
	info, _, err := s.Registry().Add("d", ds)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := aod.Options{Threshold: float64(i) / (2 * n), IncludeOFDs: true}
			v, err := s.Submit(info.ID, opts)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		waitState(t, s, id, JobDone)
	}
	st := s.Stats()
	if st.PartitionCacheHits+st.PartitionCacheMisses != n {
		t.Errorf("warm accounting: hits=%d misses=%d, want sum %d",
			st.PartitionCacheHits, st.PartitionCacheMisses, n)
	}
	if st.PartitionCacheMisses == 0 {
		t.Error("no job prepared the partitions cold")
	}
	if st.PartitionCacheEntries != 1 {
		t.Errorf("one dataset should occupy one cache entry, got %d", st.PartitionCacheEntries)
	}
}

// TestPreparedCacheEviction pins the byte bound: admitting more prepared
// datasets than the budget holds evicts the least recently used, and the
// evicted dataset's next job re-prepares (a miss, not a stale hit).
func TestPreparedCacheEviction(t *testing.T) {
	// Three datasets with distinct content (distinct fingerprints).
	dss := make([]*aod.Dataset, 3)
	var total int64
	for i := range dss {
		ds, err := aod.NewBuilder().
			AddInts("a", []int64{int64(i), 2, 3, 1, 2, 3, 1, 2, 3}).
			AddInts("b", []int64{1, 1, 1, 2, 2, 2, 3, 3, 3}).
			AddInts("c", []int64{3, 2, 1, 3, 2, 1, 3, 2, 1}).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		dss[i] = ds
		total += ds.Prepare().MemBytes()
	}
	// One byte short of all three: admitting the third must evict the first.
	s := New(Config{Workers: 1, PartitionCacheBytes: total - 1})
	defer s.Close()

	ids := make([]string, 3)
	for i, ds := range dss {
		info, _, err := s.Registry().Add(fmt.Sprintf("d%d", i), ds)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
		submitAndWait(t, s, info.ID, aod.Options{Threshold: 0.1})
	}
	st := s.Stats()
	if st.PartitionCacheEvictions == 0 {
		t.Fatalf("three datasets over a two-dataset budget evicted nothing: %+v", st)
	}
	// The evicted (oldest) dataset misses again — a fresh prepare, never a
	// stale hit.
	misses := st.PartitionCacheMisses
	submitAndWait(t, s, ids[0], aod.Options{Threshold: 0.2})
	if got := s.Stats().PartitionCacheMisses; got != misses+1 {
		t.Errorf("evicted dataset should re-prepare: misses %d -> %d, want +1", misses, got)
	}
}
