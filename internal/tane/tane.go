// Package tane implements TANE (Huhtala, Kärkkäinen, Porkka, Toivonen 1999)
// — level-wise discovery of exact and approximate functional dependencies
// with stripped partitions and g3 errors. It is reference [3] of the
// reproduced paper: the source of the linear-time approximate-OFD validation
// used inside the AOD framework, and an independent baseline profiler.
//
// The implementation discovers the complete set of minimal approximate FDs
// X → A under the plain minimality semantics: X → A is reported iff
// g3(X → A) ≤ ε and no Y ⊂ X has g3(Y → A) ≤ ε. (TANE's original C+
// candidate machinery encodes additional exact-FD inferences that do not
// carry over soundly to approximate FDs; like the host repository's OD
// engine, this implementation propagates *validity* exactly instead. The
// result is the same set for ε = 0 and a well-defined superset-free set for
// ε > 0, verified against brute force in tests.)
package tane

import (
	"fmt"
	"sort"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// FD is a discovered (approximate) functional dependency LHS → RHS.
type FD struct {
	// LHS is the determinant attribute set.
	LHS lattice.AttrSet
	// RHS is the determined attribute.
	RHS int
	// Error is the g3 approximation factor.
	Error float64
	// Removals is the removal count behind Error.
	Removals int
}

// String renders the FD as "{0,2} -> 1 (e=0.01)".
func (f FD) String() string {
	return fmt.Sprintf("%s -> %d (e=%.4f)", f.LHS, f.RHS, f.Error)
}

// Format renders the FD with column names.
func (f FD) Format(names []string) string {
	return fmt.Sprintf("%s -> %s (e=%.4f)", f.LHS.Format(names), names[f.RHS], f.Error)
}

// Config controls a TANE run.
type Config struct {
	// Threshold is the g3 threshold ε ∈ [0,1]; 0 discovers exact FDs.
	Threshold float64
	// MaxLevel bounds the size of the LHS plus one (the lattice level);
	// 0 means unbounded.
	MaxLevel int
	// TimeLimit aborts discovery, returning partial results. 0 disables.
	TimeLimit time.Duration
}

// Result is the outcome of a TANE run.
type Result struct {
	// FDs are the minimal (approximate) functional dependencies, in
	// deterministic order (by level, LHS bitmask, RHS).
	FDs []FD
	// LevelsProcessed, NodesProcessed and Candidates instrument the run.
	LevelsProcessed, NodesProcessed, Candidates int
	// TimedOut reports a TimeLimit abort.
	TimedOut bool
	// TotalTime is the end-to-end runtime.
	TotalTime time.Duration
}

// Discover runs level-wise AFD discovery over the table.
func Discover(tbl *dataset.Table, cfg Config) (*Result, error) {
	numAttrs := tbl.NumCols()
	if numAttrs < 1 {
		return nil, fmt.Errorf("tane: table must have at least one attribute")
	}
	if numAttrs > lattice.MaxAttrs {
		return nil, fmt.Errorf("tane: at most %d attributes supported, got %d", lattice.MaxAttrs, numAttrs)
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("tane: threshold must be in [0,1], got %g", cfg.Threshold)
	}
	start := time.Now()
	var deadline time.Time
	if cfg.TimeLimit > 0 {
		deadline = start.Add(cfg.TimeLimit)
	}

	arena := partition.NewArena()
	singles := make([]*partition.Stripped, numAttrs)
	for a := 0; a < numAttrs; a++ {
		singles[a] = partition.Single(tbl.Column(a))
	}

	res := &Result{}
	v := validate.New()
	l0 := lattice.Level0(tbl.NumRows(), numAttrs)
	cur := lattice.Level1(l0, tbl, singles)
	prev := l0
	maxLevel := numAttrs
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxLevel {
		maxLevel = cfg.MaxLevel
	}

	for cur.Number <= maxLevel && len(cur.Nodes) > 0 {
		res.LevelsProcessed++
		candidates := 0
		for _, node := range cur.Nodes {
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.TimedOut = true
				res.TotalTime = time.Since(start)
				return res, nil
			}
			res.NodesProcessed++
			// Propagate validity: A ∈ ConstValid(node) iff node.Set\{A} → A
			// is valid for some subset of node.Set\{A}.
			var propagated lattice.AttrSet
			node.Set.ForEach(func(c int) {
				if p := prev.Lookup(node.Set.Remove(c)); p != nil {
					propagated = propagated.Union(p.ConstValid)
				}
			})
			node.ConstValid = propagated
			attrs := node.Set.Attrs()
			for _, a := range attrs {
				if propagated.Has(a) {
					continue // valid with a smaller LHS: non-minimal
				}
				parent := prev.Lookup(node.Set.Remove(a))
				ctx := parent.PartitionIn(arena, singles)
				candidates++
				res.Candidates++
				r := v.ApproxOFD(ctx, tbl.Column(a), validate.Options{Threshold: cfg.Threshold})
				if r.Valid {
					node.ConstValid = node.ConstValid.Add(a)
					res.FDs = append(res.FDs, FD{
						LHS:      node.Set.Remove(a),
						RHS:      a,
						Error:    r.Error,
						Removals: r.Removals,
					})
				}
			}
		}
		if candidates == 0 {
			break
		}
		if cur.Number == maxLevel {
			break
		}
		next := lattice.NextLevel(cur, numAttrs)
		prevPrev := prev
		prev, cur = cur, next
		if prevPrev != l0 {
			for _, n := range prevPrev.Nodes {
				n.ReleasePartition(arena)
			}
		}
	}
	res.TotalTime = time.Since(start)
	sortFDs(res.FDs)
	return res, nil
}

func sortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].LHS.Card() != fds[j].LHS.Card() {
			return fds[i].LHS.Card() < fds[j].LHS.Card()
		}
		if fds[i].LHS != fds[j].LHS {
			return fds[i].LHS < fds[j].LHS
		}
		return fds[i].RHS < fds[j].RHS
	})
}

// ReferenceDiscover is the brute-force oracle used by tests: it enumerates
// every LHS subset and applies the minimality definition literally.
func ReferenceDiscover(tbl *dataset.Table, cfg Config) (*Result, error) {
	numAttrs := tbl.NumCols()
	if numAttrs > 20 {
		return nil, fmt.Errorf("tane: reference implementation supports <= 20 attributes")
	}
	n := tbl.NumRows()
	maxLevel := numAttrs
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxLevel {
		maxLevel = cfg.MaxLevel
	}
	g3 := func(lhs uint64, a int) int {
		groups := make(map[string]map[int32]int)
		sizes := make(map[string]int)
		key := make([]byte, 0, numAttrs*4)
		ra := tbl.Column(a).Ranks()
		for row := 0; row < n; row++ {
			key = key[:0]
			for c := 0; c < numAttrs; c++ {
				if lhs&(1<<uint(c)) == 0 {
					continue
				}
				r := tbl.Column(c).Rank(row)
				key = append(key, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
			}
			k := string(key)
			if groups[k] == nil {
				groups[k] = make(map[int32]int)
			}
			groups[k][ra[row]]++
			sizes[k]++
		}
		total := 0
		for k, freq := range groups {
			best := 0
			for _, f := range freq {
				if f > best {
					best = f
				}
			}
			total += sizes[k] - best
		}
		return total
	}
	valid := func(rem int) bool { return float64(rem)/float64(n) <= cfg.Threshold+1e-12 }

	res := &Result{}
	full := uint64(1)<<uint(numAttrs) - 1
	validAt := make(map[uint64]map[int]int)
	for lhs := uint64(0); lhs <= full; lhs++ {
		validAt[lhs] = make(map[int]int)
		for a := 0; a < numAttrs; a++ {
			if lhs&(1<<uint(a)) != 0 {
				continue
			}
			if rem := g3(lhs, a); valid(rem) {
				validAt[lhs][a] = rem
			}
		}
	}
	for lhs := uint64(0); lhs <= full; lhs++ {
		if popcount(lhs)+1 > maxLevel {
			continue
		}
		for a, rem := range validAt[lhs] {
			minimal := true
			if lhs != 0 {
				for sub := (lhs - 1) & lhs; ; sub = (sub - 1) & lhs {
					if _, ok := validAt[sub][a]; ok {
						minimal = false
						break
					}
					if sub == 0 {
						break
					}
				}
			}
			if minimal {
				res.FDs = append(res.FDs, FD{
					LHS:      lattice.AttrSet(lhs),
					RHS:      a,
					Error:    float64(rem) / float64(n),
					Removals: rem,
				})
			}
		}
	}
	sortFDs(res.FDs)
	return res, nil
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
