package service

import (
	"container/list"
	"sync"

	"aod"
)

// resultCache is an LRU cache of completed discovery reports keyed by
// (dataset fingerprint, canonicalized options) — see cacheKey. Hit/miss
// accounting lives in the Service (a "hit" there includes joining an
// in-flight computation); the cache itself only tracks occupancy.
type resultCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type cacheEntry struct {
	key string
	rep *aod.Report
}

// newResultCache returns an LRU cache holding up to capacity reports;
// capacity <= 0 disables caching entirely.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached report for key, refreshing its recency.
func (c *resultCache) get(key string) (*aod.Report, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// put stores the report under key, evicting the least recently used entry
// when over capacity. Reports are treated as immutable by all consumers.
func (c *resultCache) put(key string, rep *aod.Report) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).rep = rep
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, rep: rep})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns current size, capacity, and lifetime evictions.
func (c *resultCache) stats() (size, capacity int, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.capacity, c.evictions
}
