package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"aod/internal/dataset"
)

func mustTable(t *testing.T, cols map[string][]int64, order []string) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder()
	for _, name := range order {
		b.AddInts(name, cols[name])
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// randomTable builds a table of k integer columns with small domains.
func randomTable(rng *rand.Rand, rows, cols, domain int) *dataset.Table {
	b := dataset.NewBuilder()
	for c := 0; c < cols; c++ {
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(domain))
		}
		b.AddInts(string(rune('a'+c)), vals)
	}
	tbl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tbl
}

// signature builds per-row signatures for a set of columns (for the
// brute-force reference partition).
func signature(tbl *dataset.Table, cols ...int) []int64 {
	n := tbl.NumRows()
	sig := make([]int64, n)
	for _, c := range cols {
		ranks := tbl.Column(c).Ranks()
		d := int64(tbl.Column(c).NumDistinct())
		for i := 0; i < n; i++ {
			sig[i] = sig[i]*d + int64(ranks[i])
		}
	}
	return sig
}

// classes materializes the CSR layout as [][]int32 for test comparisons.
func classes(p *Stripped) [][]int32 {
	out := make([][]int32, 0, p.NumClasses())
	for i := 0; i < p.NumClasses(); i++ {
		out = append(out, p.Class(i))
	}
	return out
}

func classesAsSets(p *Stripped) map[int32][]int32 {
	m := make(map[int32][]int32)
	for _, cls := range classes(p) {
		m[cls[0]] = cls
	}
	return m
}

func samePartition(a, b *Stripped) bool {
	if a.N != b.N || a.NumClasses() != b.NumClasses() {
		return false
	}
	am, bm := classesAsSets(a), classesAsSets(b)
	for k, av := range am {
		if !reflect.DeepEqual(av, bm[k]) {
			return false
		}
	}
	return true
}

func TestSinglePaperExample(t *testing.T) {
	// Example 2.9: Π_pos of Table 1 = {{t1,t2,t4},{t3,t5,t6,t7,t8},{t9}};
	// stripped drops {t9}.
	b := dataset.NewBuilder()
	b.AddStrings("pos", []string{"sec", "sec", "dev", "sec", "dev", "dev", "dev", "dev", "dir"})
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := Single(tbl.Column(0))
	if p.NumClasses() != 2 {
		t.Fatalf("classes = %d, want 2", p.NumClasses())
	}
	want0 := []int32{0, 1, 3}
	want1 := []int32{2, 4, 5, 6, 7}
	if !reflect.DeepEqual(p.Class(0), want0) || !reflect.DeepEqual(p.Class(1), want1) {
		t.Errorf("classes = %v", classes(p))
	}
	if p.Size() != 8 {
		t.Errorf("Size = %d, want 8", p.Size())
	}
	if p.TotalClasses() != 3 {
		t.Errorf("TotalClasses = %d, want 3", p.TotalClasses())
	}
}

func TestSingleAllUnique(t *testing.T) {
	tbl := mustTable(t, map[string][]int64{"a": {5, 3, 1, 4, 2}}, []string{"a"})
	p := Single(tbl.Column(0))
	if !p.IsUnique() {
		t.Error("all-distinct column should be unique")
	}
	if p.TotalClasses() != 5 {
		t.Errorf("TotalClasses = %d, want 5", p.TotalClasses())
	}
}

func TestSingleAllEqual(t *testing.T) {
	tbl := mustTable(t, map[string][]int64{"a": {7, 7, 7}}, []string{"a"})
	p := Single(tbl.Column(0))
	if p.NumClasses() != 1 || p.Size() != 3 {
		t.Errorf("got %v", p)
	}
}

func TestProductMatchesSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 200; iter++ {
		rows := 1 + rng.Intn(60)
		tbl := randomTable(rng, rows, 3, 1+rng.Intn(5))
		pa := Single(tbl.Column(0))
		pb := Single(tbl.Column(1))
		pc := Single(tbl.Column(2))

		ab := pa.Product(pb)
		want := FromRowSignature(signature(tbl, 0, 1), rows)
		if !samePartition(ab, want) {
			t.Fatalf("iter %d: product(a,b) = %v, want %v", iter, classes(ab), classes(want))
		}
		abc := ab.Product(pc)
		want3 := FromRowSignature(signature(tbl, 0, 1, 2), rows)
		if !samePartition(abc, want3) {
			t.Fatalf("iter %d: product(ab,c) = %v, want %v", iter, classes(abc), classes(want3))
		}
		// Product is commutative up to class identity.
		ba := pb.Product(pa)
		if !samePartition(ab, ba) {
			t.Fatalf("iter %d: product not commutative", iter)
		}
	}
}

func TestProductRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		rows := 2 + rng.Intn(40)
		tbl := randomTable(rng, rows, 2, 1+rng.Intn(4))
		pa := Single(tbl.Column(0))
		pb := Single(tbl.Column(1))
		ab := pa.Product(pb)
		if !ab.Refines(pa) || !ab.Refines(pb) {
			t.Fatalf("iter %d: product does not refine factors", iter)
		}
	}
}

func TestProductPanicsOnMismatchedN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for mismatched row counts")
		}
	}()
	a := &Stripped{N: 3}
	b := &Stripped{N: 4}
	a.Product(b)
}

func TestClassIDs(t *testing.T) {
	p := FromClasses(5, [][]int32{{0, 2}, {1, 4}})
	want := []int32{0, 1, 0, -1, 1}
	if got := p.ClassIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("ClassIDs = %v, want %v", got, want)
	}
}

func TestRefinesEdgeCases(t *testing.T) {
	u := Universe(4)
	fine := FromClasses(4, [][]int32{{0, 1}})
	if !fine.Refines(u) {
		t.Error("partition should refine universe")
	}
	if u.Refines(fine) {
		t.Error("universe should not refine a proper partition")
	}
	other := &Stripped{N: 5}
	if fine.Refines(other) {
		t.Error("different N should not refine")
	}
	empty := &Stripped{N: 4}
	if !empty.Refines(fine) {
		t.Error("fully stripped partition refines everything")
	}
}

func TestUniverse(t *testing.T) {
	u := Universe(3)
	if u.NumClasses() != 1 || u.Size() != 3 {
		t.Errorf("Universe(3) = %v", u)
	}
	if got := Universe(1); got.NumClasses() != 0 {
		t.Errorf("Universe(1) should be stripped, got %v", got)
	}
	if got := Universe(0); got.NumClasses() != 0 {
		t.Errorf("Universe(0) should be empty, got %v", got)
	}
}

func TestFromRowSignatureOrdering(t *testing.T) {
	sig := []int64{9, 2, 9, 2, 5}
	p := FromRowSignature(sig, 5)
	if p.NumClasses() != 2 {
		t.Fatalf("classes = %d", p.NumClasses())
	}
	if !reflect.DeepEqual(p.Class(0), []int32{0, 2}) {
		t.Errorf("first class = %v", p.Class(0))
	}
	if !reflect.DeepEqual(p.Class(1), []int32{1, 3}) {
		t.Errorf("second class = %v", p.Class(1))
	}
}

func TestStringSummary(t *testing.T) {
	p := FromClasses(5, [][]int32{{0, 2}})
	if got := p.String(); got != "Stripped(1 classes over 2/5 rows)" {
		t.Errorf("String = %q", got)
	}
}

// Product with a unique (key) partition is always fully stripped.
func TestProductWithKey(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tbl := randomTable(rng, 30, 1, 3)
	pa := Single(tbl.Column(0))
	key := &Stripped{N: 30} // all singletons
	if got := pa.Product(key); !got.IsUnique() {
		t.Errorf("product with key should be unique, got %v", got)
	}
	if got := key.Product(pa); !got.IsUnique() {
		t.Errorf("key.Product should be unique, got %v", got)
	}
}
