package service

import (
	"testing"

	"aod"
)

// TestPickExecutor pins the adaptive router's decision table: the work
// estimate picks the tier, explicit Parallelism is never downgraded to
// serial, and DisableAdaptive restores the pre-adaptive routing.
func TestPickExecutor(t *testing.T) {
	pool := aod.LoopbackShardPool(1)
	defer pool.Close()

	cases := []struct {
		name string
		cfg  Config
		cost int64
		par  int
		want executorChoice
	}{
		{"tiny-serial", Config{}, 1000, 0, execSerial},
		{"tiny-at-boundary", Config{}, DefaultSerialCostMax, 0, execSerial},
		{"mid-pool", Config{}, DefaultSerialCostMax + 1, 0, execPool},
		{"large-no-shardpool-stays-pool", Config{}, DefaultShardCostMin, 0, execPool},
		{"large-sharded", Config{ShardPool: pool}, DefaultShardCostMin, 0, execSharded},
		{"just-under-shard-min", Config{ShardPool: pool}, DefaultShardCostMin - 1, 0, execPool},
		{"explicit-parallelism-never-serial", Config{}, 1000, 4, execPool},
		{"shard-cost-min-override", Config{ShardPool: pool, ShardCostMin: 1}, 1000, 0, execSharded},
		{"serial-cost-max-negative-no-serial-tier", Config{SerialCostMax: -1}, 1, 0, execPool},
		{"disabled-sharded-when-pool", Config{DisableAdaptive: true, ShardPool: pool}, 1, 0, execSharded},
		{"disabled-serial-without-pool", Config{DisableAdaptive: true}, 1 << 40, 0, execSerial},
		{"disabled-pool-on-parallelism", Config{DisableAdaptive: true}, 1, 4, execPool},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Workers = 1
			s := New(cfg)
			defer s.Close()
			j := &Job{initialCost: tc.cost, opts: aod.Options{Parallelism: tc.par}}
			if got := s.pickExecutor(j); got != tc.want {
				t.Errorf("pickExecutor(cost=%d, par=%d) = %v, want %v", tc.cost, tc.par, got, tc.want)
			}
		})
	}
}

// TestAdaptiveRoutingCounters pins that a validation run increments exactly
// one aod_jobs_routed_total series, surfaced through Stats.
func TestAdaptiveRoutingCounters(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	info, _, err := s.Registry().Add("d", multiLevelDataset(t, 200, 4))
	if err != nil {
		t.Fatal(err)
	}
	view, err := s.Submit(info.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, view.ID, JobDone)
	st := s.Stats()
	if st.JobsRoutedSerial != 1 || st.JobsRoutedPool != 0 || st.JobsRoutedSharded != 0 {
		t.Errorf("routed counters = serial %d / pool %d / sharded %d, want a 200×4 job routed serial once",
			st.JobsRoutedSerial, st.JobsRoutedPool, st.JobsRoutedSharded)
	}
}
