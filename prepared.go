package aod

import (
	"context"

	"aod/internal/core"
	"aod/internal/partition"
)

// PreparedDataset binds a dataset to its single-attribute partitions, built
// once and immutable afterwards — the cold-start state every discovery run
// over the dataset would otherwise rebuild. The partitions are marked shared,
// so one PreparedDataset is safe to hand to any number of concurrent
// discovery runs; the aodserver keeps a bounded, fingerprint-keyed cache of
// them (-partition-cache-bytes) so repeat jobs against a registered dataset —
// same data, different thresholds or options — skip partitioning entirely.
type PreparedDataset struct {
	d    *Dataset
	prep *core.PreparedTable
}

// Prepare builds the dataset's per-attribute partitions. The work is the same
// partitioning a discovery run performs on startup, paid once here instead of
// per run.
func (d *Dataset) Prepare() *PreparedDataset {
	return &PreparedDataset{d: d, prep: core.Prepare(d.tbl)}
}

// Dataset returns the dataset the partitions were built from. Because equal
// fingerprints guarantee identical discovery results, a cache holding a
// PreparedDataset by fingerprint may run discovery against this dataset in
// place of any other copy with the same fingerprint.
func (p *PreparedDataset) Dataset() *Dataset { return p.d }

// MemBytes reports the retained partition-buffer bytes — the accounting
// currency of a size-bounded prepared-dataset cache.
func (p *PreparedDataset) MemBytes() int64 { return p.prep.MemBytes() }

// PartitionArena is a size-capped partition-buffer pool shared across
// discovery runs: buffers released by one run's lattice traversal are reused
// by the next instead of being reallocated, holding at most the configured
// byte budget. Safe for concurrent use by any number of runs.
type PartitionArena struct {
	a *partition.Arena
}

// NewPartitionArena returns an arena retaining at most maxBytes of partition
// buffers across runs (<= 0 disables retention accounting and degenerates to
// a GC-managed pool).
func NewPartitionArena(maxBytes int64) *PartitionArena {
	return &PartitionArena{a: partition.NewArenaLimit(maxBytes)}
}

// RetainedBytes reports the buffer bytes currently held for reuse.
func (a *PartitionArena) RetainedBytes() int64 { return a.a.RetainedBytes() }

// Warm bundles the cross-job state a discovery run may reuse: prepared
// single-attribute partitions and a shared buffer arena. The zero value is a
// fully cold run. Warm state never changes results — only where partition
// bytes come from.
type Warm struct {
	// Prepared supplies the dataset's single-attribute partitions. It is
	// honored only when it was built from the very dataset being discovered
	// (pointer identity); a mismatched Prepared is ignored, not an error.
	Prepared *PreparedDataset
	// Arena, when non-nil, replaces the run's private partition arena with a
	// shared one, so intermediate partition buffers recycle across runs.
	Arena *PartitionArena
}

// DiscoverWarmStreamContext is the warm-path discovery entry point: it runs
// like DiscoverShardedStreamContext (a nil pool falls back to local serial or
// pool execution per Options.Parallelism) but reuses warm's prepared
// partitions and shared arena. Reports are byte-identical to the cold paths'.
func DiscoverWarmStreamContext(ctx context.Context, d *Dataset, opts Options, warm Warm, pool *ShardPool, onLevel ProgressFunc) (*Report, error) {
	var exec core.Executor
	switch {
	case pool != nil:
		exec = core.ShardedQuantum(pool.cluster, opts.ShardWorkQuantum)
	case opts.Parallelism > 1:
		exec = core.Pool(opts.Parallelism)
	}
	return discoverWarmExec(ctx, d, opts, exec, warm, onLevel)
}
