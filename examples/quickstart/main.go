// Quickstart: build a small dataset in code, discover approximate order
// dependencies, and print them ranked by interestingness.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aod"
)

func main() {
	// A tiny product catalogue. Weight and shipping cost are intended to be
	// order compatible (heavier ⇒ pricier shipping), but one row has a data
	// entry error.
	ds, err := aod.NewBuilder().
		AddStrings("category", []string{"book", "book", "book", "tool", "tool", "tool", "toy", "toy"}).
		AddInts("weightGrams", []int64{200, 450, 900, 1200, 2500, 4000, 300, 800}).
		AddInts("shippingCents", []int64{299, 399, 499, 599, 899, 199, 349, 449}).
		AddInts("priceCents", []int64{1099, 1499, 2499, 3599, 7999, 12999, 999, 1899}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", ds)

	// Exact discovery misses weight ∼ shipping because of the single error.
	exact, err := aod.Discover(ds, aod.Options{Algorithm: aod.AlgorithmExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact OCs (%d):\n", len(exact.OCs))
	for _, oc := range exact.OCs {
		fmt.Println("  ", oc)
	}

	// Allowing 15% exceptions recovers the intended dependency — with the
	// minimal set of offending rows attached.
	approx, err := aod.Discover(ds, aod.Options{
		Threshold:          0.15,
		Algorithm:          aod.AlgorithmOptimal,
		CollectRemovalSets: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napproximate OCs at ε=15%% (%d):\n", len(approx.OCs))
	for _, oc := range approx.OCs {
		fmt.Printf("  %v  score=%.3f\n", oc, oc.Score)
		for _, row := range oc.RemovalRows {
			av, _ := ds.Value(row, oc.A)
			bv, _ := ds.Value(row, oc.B)
			fmt.Printf("      exception row %d: %s=%s %s=%s\n", row, oc.A, av, oc.B, bv)
		}
	}
}
