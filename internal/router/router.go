// Package router is the fault-tolerant front door for a fleet of replicated
// aodservers: a thin, effectively stateless HTTP proxy that hash-routes
// requests across replicas keyed by dataset content fingerprint, probes
// replica health, retries and fails over with jittered exponential backoff,
// and sheds load per tenant with honest Retry-After hints.
//
// Three properties of the backend make the router simple enough to trust:
//
//   - Dataset uploads are content-addressed and idempotent, so the router
//     replicates every upload to every replica — a job can then run
//     anywhere its routing lands.
//   - Job submission is idempotent per (fingerprint, canonical options):
//     replicas dedup identical submissions through their result cache and
//     single-flight table, and peer each other's caches. Retrying a submit
//     on another replica therefore cannot double-execute a completed job —
//     the cache key IS the dedup key.
//   - Job results are immutable once computed, so serving a report from
//     whichever replica holds it is always correct.
//
// Every backend RPC — health probes included — passes through a pluggable
// http.RoundTripper, which is where the deterministic FaultPlan chaos seam
// hooks in; the router cannot tell injected faults from organic ones, which
// is the point.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"aod/internal/service"
	"aod/internal/telemetry"
)

// Config configures a Router. Replicas is the only required field.
type Config struct {
	// Replicas are the backend aodserver base URLs (http://host:port).
	Replicas []string

	// MaxAttempts bounds total tries per proxied call, first attempt
	// included (default 2×len(Replicas), min 3). RetryBudget bounds the
	// same thing in wall-clock time (default 15s) — whichever runs out
	// first ends the retrying.
	MaxAttempts int
	RetryBudget time.Duration

	// BackoffBase doubles per retry up to BackoffMax, multiplied by a
	// jitter in [0.5, 1.5) drawn from a generator seeded with Seed — the
	// retry schedule is reproducible for a given seed. Defaults: 25ms base,
	// 1s max, seed 1.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        int64

	// Probe cadence for active /healthz checks (defaults 500ms / 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// AttemptTimeout bounds one non-streaming backend RPC (default 15s).
	// Streams are exempt: they live as long as the client connection.
	AttemptTimeout time.Duration

	// MaxQueueAge sheds new submits when every healthy replica's oldest
	// queued job is older than this (0 disables). The 503 carries a
	// Retry-After derived from the observed age, not a constant.
	MaxQueueAge time.Duration

	// Admission quotas: DefaultQuota applies to tenants absent from
	// Quotas. Tenants identify themselves with the X-AOD-Tenant header;
	// the empty tenant is a tenant like any other.
	DefaultQuota TenantQuota
	Quotas       map[string]TenantQuota

	// MaxUploadBytes bounds dataset upload bodies
	// (default service.DefaultMaxUploadBytes).
	MaxUploadBytes int64

	// Fault, when set, wraps the transport with the deterministic
	// fault-injection seam. Transport overrides the base transport
	// (tests; default is a tuned http.Transport).
	Fault     *FaultPlan
	Transport http.RoundTripper

	// Metrics receives aod_router_* series (default: a fresh registry,
	// exposed on GET /metrics either way). Logf defaults to silent.
	Metrics *telemetry.Registry
	Logf    func(format string, args ...any)

	now func() time.Time // test seam
}

// maxSubmitBytes bounds a job-submission body; a submit is a dataset id
// plus options, so 1 MiB is already generous.
const maxSubmitBytes = 1 << 20

// submitMemoryCap bounds remembered submits (failover window).
const submitMemoryCap = 4096

func (cfg Config) withDefaults() Config {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2 * len(cfg.Replicas)
		if cfg.MaxAttempts < 3 {
			cfg.MaxAttempts = 3
		}
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 15 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 15 * time.Second
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = service.DefaultMaxUploadBytes
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return cfg
}

type routerMetrics struct {
	requests   *telemetry.Counter
	retries    *telemetry.Counter
	failovers  *telemetry.Counter
	shedTenant *telemetry.Counter
	shedQueue  *telemetry.Counter
	exhausted  *telemetry.Counter
	uploadRepl *telemetry.Counter
	rpc        []*telemetry.Histogram // indexed by replica
}

// Router proxies the aodserver HTTP API across replicas. Create with New,
// serve it (it implements http.Handler), Close it to stop the probes.
type Router struct {
	cfg       Config
	replicas  []*replica
	transport http.RoundTripper
	mux       *http.ServeMux
	met       routerMetrics
	admit     *admitter
	submits   *submitMemory

	jitterMu sync.Mutex
	jitter   *rand.Rand

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Router and starts its health probes.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: no replicas configured")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:     cfg,
		jitter:  rand.New(rand.NewSource(cfg.Seed)),
		admit:   newAdmitter(cfg.DefaultQuota, cfg.Quotas),
		submits: newSubmitMemory(submitMemoryCap),
		stop:    make(chan struct{}),
	}
	for i, base := range cfg.Replicas {
		rp := &replica{idx: i, base: strings.TrimRight(base, "/")}
		rp.up.Store(true) // optimistic until the first probe lands — don't refuse work at startup
		rt.replicas = append(rt.replicas, rp)
	}
	base := cfg.Transport
	if base == nil {
		base = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	rt.transport = cfg.Fault.transport(base)
	rt.initMetrics()
	rt.initMux()
	for _, rp := range rt.replicas {
		rt.wg.Add(1)
		go rt.probeLoop(rp)
	}
	return rt, nil
}

func (rt *Router) initMetrics() {
	reg := rt.cfg.Metrics
	rt.met = routerMetrics{
		requests:   reg.Counter("aod_router_requests_total", "", "Client requests handled by the router."),
		retries:    reg.Counter("aod_router_retries_total", "", "Backend RPC retries (attempts beyond each call's first)."),
		failovers:  reg.Counter("aod_router_failovers_total", "", "Jobs re-submitted to another replica after their stream or home replica failed."),
		shedTenant: reg.Counter("aod_router_shed_total", telemetry.Label("reason", "tenant"), "Requests shed by admission control."),
		shedQueue:  reg.Counter("aod_router_shed_total", telemetry.Label("reason", "queue"), "Requests shed by admission control."),
		exhausted:  reg.Counter("aod_router_exhausted_total", "", "Proxied calls that failed every replica within the retry budget."),
		uploadRepl: reg.Counter("aod_router_upload_replication_errors_total", "", "Dataset upload copies that failed on some replica (the upload itself may still have succeeded elsewhere)."),
	}
	for _, rp := range rt.replicas {
		rp := rp
		labels := telemetry.Label("replica", rp.name())
		reg.GaugeFunc("aod_router_replica_up", labels, "1 when the replica answers its health probe, else 0.", func() int64 {
			if rp.up.Load() {
				return 1
			}
			return 0
		})
		reg.GaugeFunc("aod_router_replica_queue_age_seconds", labels, "Age of the replica's oldest queued job, from its last probe.", func() int64 {
			return int64(time.Duration(rp.queueAgeNs.Load()) / time.Second)
		})
		rt.met.rpc = append(rt.met.rpc, reg.Histogram("aod_router_rpc_seconds", labels, "Backend RPC latency per replica."))
	}
}

func (rt *Router) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /datasets", rt.postDataset)
	mux.HandleFunc("GET /datasets", rt.listProxy("/datasets"))
	mux.HandleFunc("GET /datasets/{id}", rt.getDataset)
	mux.HandleFunc("POST /jobs", rt.postJob)
	mux.HandleFunc("GET /jobs", rt.listJobs)
	mux.HandleFunc("GET /jobs/{id}", rt.jobProxy)
	mux.HandleFunc("GET /jobs/{id}/stream", rt.streamJob)
	mux.HandleFunc("GET /jobs/{id}/trace", rt.jobProxy)
	mux.HandleFunc("DELETE /jobs/{id}", rt.jobProxy)
	mux.HandleFunc("GET /healthz", rt.healthz)
	mux.HandleFunc("GET /routerz", rt.routerz)
	mux.HandleFunc("GET /stats", rt.stats)
	mux.HandleFunc("GET /metrics", rt.metricsHandler)
	rt.mux = mux
}

// Close stops the health probes. In-flight proxied requests finish on their
// own schedule (the owning http.Server decides their fate).
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Identify the hop so clients (and aodload) can tell routed from
	// direct traffic.
	w.Header().Set("X-AOD-Router", "aodrouter/1")
	rt.met.requests.Inc()
	rt.mux.ServeHTTP(w, r)
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

func (rt *Router) now() time.Time { return rt.cfg.now() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ---- retrying RPC core ----

// do runs one RPC against one replica through the (possibly fault-wrapped)
// transport, recording per-replica latency and passively marking the
// replica down on transport errors — the probe loop will mark it back up.
func (rt *Router) do(rp *replica, req *http.Request) (*http.Response, error) {
	t0 := time.Now()
	resp, err := rt.transport.RoundTrip(req)
	rt.met.rpc[rp.idx].Observe(time.Since(t0))
	if err != nil {
		rt.setUp(rp, false, err.Error())
	}
	return resp, err
}

// rpcResult is what tryReplicas hands back: either a conclusive response
// (body open, caller closes) or the evidence of exhaustion.
type rpcResult struct {
	resp     *http.Response // nil when every attempt failed
	rp       *replica       // replica that produced resp (or the last one tried)
	attempts int

	// Evidence from the last retryable failure, for an honest error reply.
	lastStatus     int
	lastRetryAfter string
	lastBody       []byte
	lastErr        error
}

// tryReplicas walks the candidates in order (cycling if attempts remain),
// retrying with jittered exponential backoff until a conclusive response
// arrives or the attempt/wall-clock budget runs out. Transport errors,
// timeouts, and 5xx responses fail over; any 2xx–4xx response is conclusive
// and returned as-is — except 404 when retry404 is set, for calls where
// "not found here" can mean "found on a sibling" (datasets still
// replicating, jobs after a failover). Only safe for idempotent calls; see
// the package comment for why submits qualify.
func (rt *Router) tryReplicas(ctx context.Context, cands []*replica, retry404 bool, build func(ctx context.Context, base string) (*http.Request, error)) rpcResult {
	deadline := rt.now().Add(rt.cfg.RetryBudget)
	res := rpcResult{}
	for {
		for _, rp := range cands {
			if res.attempts >= rt.cfg.MaxAttempts || !rt.now().Before(deadline) {
				rt.met.exhausted.Inc()
				return res
			}
			if res.attempts > 0 {
				rt.met.retries.Inc()
				if !rt.sleep(ctx, rt.backoff(res.attempts)) {
					res.lastErr = ctx.Err()
					return res
				}
			}
			res.attempts++
			res.rp = rp
			actx, cancel := context.WithDeadline(ctx, minTime(deadline, rt.now().Add(rt.cfg.AttemptTimeout)))
			req, err := build(actx, rp.base)
			if err != nil {
				cancel()
				res.lastErr = err
				return res // a request we cannot build will not improve with retries
			}
			resp, err := rt.do(rp, req)
			if err != nil {
				cancel()
				res.lastErr = err
				continue
			}
			if resp.StatusCode >= 500 || (retry404 && resp.StatusCode == http.StatusNotFound) {
				res.lastStatus = resp.StatusCode
				res.lastRetryAfter = resp.Header.Get("Retry-After")
				res.lastBody, _ = io.ReadAll(io.LimitReader(resp.Body, 8<<10))
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
				cancel()
				continue
			}
			resp.Body = &cancelOnClose{rc: resp.Body, cancel: cancel}
			res.resp = resp
			return res
		}
	}
}

// exhaustedReply turns a nil-resp rpcResult into the most honest error we
// can give: the backend's own last 5xx (with its Retry-After) if one was
// seen, else a 502 naming the transport failure.
func (rt *Router) exhaustedReply(w http.ResponseWriter, res rpcResult) {
	w.Header().Set("X-AOD-Router-Attempts", strconv.Itoa(res.attempts))
	if res.lastStatus != 0 {
		if res.lastRetryAfter != "" {
			w.Header().Set("Retry-After", res.lastRetryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.lastStatus)
		w.Write(res.lastBody)
		return
	}
	err := res.lastErr
	if err == nil {
		err = errors.New("all replicas unavailable")
	}
	writeErr(w, http.StatusBadGateway, fmt.Errorf("router: %d attempts failed: %w", res.attempts, err))
}

// cancelOnClose ties an attempt's context to its response body lifetime.
type cancelOnClose struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Read(p []byte) (int, error) { return c.rc.Read(p) }
func (c *cancelOnClose) Close() error {
	err := c.rc.Close()
	c.cancel()
	return err
}

func (rt *Router) backoff(attempt int) time.Duration {
	d := rt.cfg.BackoffBase
	for i := 1; i < attempt && d < rt.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > rt.cfg.BackoffMax {
		d = rt.cfg.BackoffMax
	}
	rt.jitterMu.Lock()
	f := 0.5 + rt.jitter.Float64() // [0.5, 1.5): desynchronizes competing retriers
	rt.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

func (rt *Router) sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	case <-rt.stop:
		return false
	}
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

// readBody slurps a conclusive response and closes it.
func readBody(resp *http.Response) []byte {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	return raw
}

// forward relays a conclusive backend response to the client, with the
// attempt count stamped on.
func forward(w http.ResponseWriter, resp *http.Response, body []byte, attempts int) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-AOD-Router-Attempts", strconv.Itoa(attempts))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// ---- job id namespacing ----

// The router namespaces replica-local job ids as "r<i>.<localID>" so ids
// stay unique across the fleet and route back to their home replica without
// any router-side table (the submit memory is an optimization on top, and
// the authority for jobs that failed over).
func splitJobID(gid string) (idx int, local string, ok bool) {
	if len(gid) < 4 || gid[0] != 'r' {
		return 0, "", false
	}
	dot := strings.IndexByte(gid, '.')
	if dot < 2 {
		return 0, "", false
	}
	n, err := strconv.Atoi(gid[1:dot])
	if err != nil || n < 0 {
		return 0, "", false
	}
	return n, gid[dot+1:], true
}

// resolveJob maps a client-facing job id to (replica, local id). The submit
// memory wins when it has the job — after a failover it points at the new
// home — falling back to the id's embedded replica index.
func (rt *Router) resolveJob(gid string) (rec *submitRecord, idx int, local string, ok bool) {
	if r, found := rt.submits.get(gid); found {
		return &r, r.replica, r.localID, true
	}
	idx, local, ok = splitJobID(gid)
	if !ok || idx >= len(rt.replicas) {
		return nil, 0, "", false
	}
	return nil, idx, local, true
}

// rewriteID renames "id" in a JSON object body to the router-namespaced id.
func rewriteID(raw []byte, gid string) []byte {
	var m map[string]any
	if json.Unmarshal(raw, &m) != nil {
		return raw
	}
	if _, has := m["id"]; !has {
		return raw
	}
	m["id"] = gid
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return raw
	}
	return append(out, '\n')
}
