// Package lis implements the sequence algorithms underlying approximate
// order-compatibility validation: longest non-decreasing subsequence (LNDS)
// computation in O(n log n) after Fredman's dynamic-programming formulation
// [Fredman 1975], LNDS reconstruction via back-pointers (for minimal removal
// sets, Theorem 3.3 of the paper), strictly-increasing LIS (for the LIS-DEC
// reduction in the optimality proof, Theorem 3.4), and per-element inversion
// counting with a Fenwick tree (the swap counts used by the iterative
// validator, Algorithm 1).
package lis

// LNDSLength returns the length of a longest non-decreasing subsequence of
// seq in O(n log n) time and O(n) space.
func LNDSLength(seq []int32) int {
	// tails[k] = smallest possible last element of a non-decreasing
	// subsequence of length k+1. tails is itself non-decreasing.
	tails := make([]int32, 0, 16)
	for _, v := range seq {
		// Find the first tail strictly greater than v (upper bound): equal
		// values may extend a subsequence, so they replace only strictly
		// larger tails.
		lo, hi := 0, len(tails)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if tails[mid] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(tails) {
			tails = append(tails, v)
		} else {
			tails[lo] = v
		}
	}
	return len(tails)
}

// LISLength returns the length of a longest strictly increasing subsequence
// of seq in O(n log n).
func LISLength(seq []int32) int {
	tails := make([]int32, 0, 16)
	for _, v := range seq {
		// Lower bound: the first tail >= v is replaced, so equal values can
		// never extend a subsequence.
		lo, hi := 0, len(tails)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if tails[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(tails) {
			tails = append(tails, v)
		} else {
			tails[lo] = v
		}
	}
	return len(tails)
}

// LNDS returns the indexes (ascending) of one longest non-decreasing
// subsequence of seq, in O(n log n) time and O(n) space. The complement of
// the returned index set is a minimal removal set making seq non-decreasing.
// It is the allocating convenience form of Scratch.LNDS.
func LNDS(seq []int32) []int {
	var s Scratch
	keep := s.LNDS(seq)
	if keep == nil {
		return nil
	}
	out := make([]int, len(keep))
	for i, k := range keep {
		out[i] = int(k)
	}
	return out
}

// Scratch holds the reusable state of the scratch LNDS form, so validation
// loops can reconstruct longest non-decreasing subsequences without
// allocating per call. The zero value is ready to use; not safe for
// concurrent use.
type Scratch struct {
	tailsIdx []int32
	prev     []int32
	keep     []int32
}

// LNDS computes the ascending indexes of one longest non-decreasing
// subsequence of seq, reusing the scratch buffers: the result aliases the
// scratch and is valid only until the next call. tailsIdx[k] tracks the
// index of the current tail of a length-k+1 subsequence; prev[i] is the
// back-pointer used to reconstruct the kept index set.
func (s *Scratch) LNDS(seq []int32) []int32 {
	n := len(seq)
	if n == 0 {
		return nil
	}
	if cap(s.prev) < n {
		s.prev = make([]int32, n)
		s.tailsIdx = make([]int32, 0, n)
		s.keep = make([]int32, n)
	}
	prev := s.prev[:n]
	tailsIdx := s.tailsIdx[:0]
	for i, v := range seq {
		lo, hi := 0, len(tailsIdx)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if seq[tailsIdx[mid]] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			prev[i] = tailsIdx[lo-1]
		} else {
			prev[i] = -1
		}
		if lo == len(tailsIdx) {
			tailsIdx = append(tailsIdx, int32(i))
		} else {
			tailsIdx[lo] = int32(i)
		}
	}
	s.tailsIdx = tailsIdx
	out := s.keep[:len(tailsIdx)]
	at := tailsIdx[len(tailsIdx)-1]
	for k := len(tailsIdx) - 1; k >= 0; k-- {
		out[k] = at
		at = prev[at]
	}
	return out
}

// Fenwick is a binary indexed tree over values 0..size-1 supporting point
// increments and prefix-sum queries in O(log size).
type Fenwick struct {
	tree []int32
}

// NewFenwick returns a Fenwick tree over the value domain [0, size).
func NewFenwick(size int) *Fenwick {
	return &Fenwick{tree: make([]int32, size+1)}
}

// Add increments the count of value v by delta.
func (f *Fenwick) Add(v int32, delta int32) {
	for i := int(v) + 1; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the total count of values <= v.
func (f *Fenwick) PrefixSum(v int32) int32 {
	if v < 0 {
		return 0
	}
	var s int32
	i := int(v) + 1
	if i >= len(f.tree) {
		i = len(f.tree) - 1
	}
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Total returns the total count of all values.
func (f *Fenwick) Total() int32 {
	return f.PrefixSum(int32(len(f.tree) - 2))
}

// Reset zeroes the tree for reuse.
func (f *Fenwick) Reset() {
	clear(f.tree)
}

// InversionCounts returns, for each position i of seq, the number of strict
// inversions it participates in — pairs (i, j) with i < j and seq[j] < seq[i],
// counted from both sides — together with the total number of inversion
// pairs. maxRank must be strictly greater than every value in seq.
//
// When seq is the B-projection of a class sorted by (A asc, B asc), these
// counts are exactly the per-tuple swap counts of Algorithm 1 (ties in A are
// B-ascending and therefore contribute no inversions). Runtime O(n log n).
// It is the allocating convenience form of InvScratch.Counts.
func InversionCounts(seq []int32, maxRank int32) (perElem []int32, total int64) {
	var s InvScratch
	return s.Counts(seq, maxRank)
}

// InvScratch holds the reusable state of the scratch inversion-counting
// form — the per-element count buffer and the Fenwick tree — so validation
// loops can compute swap counts without allocating per class. The zero value
// is ready to use; not safe for concurrent use.
type InvScratch struct {
	per []int32
	ft  Fenwick
}

// Counts is InversionCounts reusing the scratch buffers: the returned slice
// aliases the scratch and is valid only until the next call.
func (s *InvScratch) Counts(seq []int32, maxRank int32) (perElem []int32, total int64) {
	n := len(seq)
	if s.per == nil || cap(s.per) < n {
		// Allocated even for n == 0 (a zero-size make is heap-free), so the
		// result is a non-nil empty slice like the pre-scratch form returned.
		s.per = make([]int32, n)
	}
	perElem = s.per[:n]
	clear(perElem)
	if cap(s.ft.tree) < int(maxRank)+1 {
		s.ft.tree = make([]int32, maxRank+1)
	} else {
		s.ft.tree = s.ft.tree[:maxRank+1]
		s.ft.Reset()
	}
	ft := &s.ft
	// Left-to-right: count earlier elements strictly greater than seq[i].
	for i, v := range seq {
		seen := int32(i)
		leq := ft.PrefixSum(v)
		perElem[i] += seen - leq // strictly greater among the i earlier
		ft.Add(v, 1)
	}
	ft.Reset()
	// Right-to-left: count later elements strictly less than seq[i].
	for i := n - 1; i >= 0; i-- {
		v := seq[i]
		less := ft.PrefixSum(v - 1)
		perElem[i] += less
		total += int64(less)
		ft.Add(v, 1)
	}
	return perElem, total
}
