package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"aod"
)

// DatasetMeta is the durable registry metadata for one stored dataset — the
// manifest entry plus everything needed to reload and verify its payload
// (column Types make the CSV reload lossless; the Fingerprint is re-derived
// from the reloaded table and must match).
type DatasetMeta struct {
	ID          string    `json:"id"`
	Name        string    `json:"name,omitempty"`
	Fingerprint string    `json:"fingerprint"`
	Rows        int       `json:"rows"`
	Cols        int       `json:"cols"`
	Columns     []string  `json:"columns"`
	Types       []string  `json:"types"`
	CreatedAt   time.Time `json:"createdAt"`
}

// manifestFile is the JSON snapshot written to manifest.json.
type manifestFile struct {
	Version  int           `json:"version"`
	Datasets []DatasetMeta `json:"datasets"`
}

const manifestVersion = 1

// Datasets returns the manifest's dataset metadata in registration order.
func (s *Store) Datasets() []DatasetMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DatasetMeta, len(s.manifest.Datasets))
	copy(out, s.manifest.Datasets)
	return out
}

// loadManifest reads manifest.json at Open. A missing manifest starts empty;
// a corrupt one is quarantined and rebuilt from the dataset payload files.
func (s *Store) loadManifest() error {
	path := s.path(manifestName)
	var m manifestFile
	err := s.readJSONFile(path, &m)
	switch {
	case errors.Is(err, ErrNotFound):
		s.manifest = manifestFile{Version: manifestVersion}
		return nil
	case errors.Is(err, ErrCorrupt):
		return s.recoverManifest()
	case err != nil:
		return fmt.Errorf("store: reading manifest: %w", err)
	}
	// Drop entries that cannot possibly reload (schema drift, hand edits);
	// their payload files stay on disk and are picked up again if the same
	// content is re-uploaded.
	kept := m.Datasets[:0]
	for _, d := range m.Datasets {
		if d.Fingerprint != "" && len(d.Columns) == len(d.Types) {
			kept = append(kept, d)
		}
	}
	m.Datasets = kept
	m.Version = manifestVersion
	s.manifest = m
	return nil
}

// saveManifestLocked rewrites manifest.json atomically. Caller holds s.mu.
func (s *Store) saveManifestLocked() error {
	data, err := json.MarshalIndent(&s.manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	if err := s.writeFileAtomic(s.path(manifestName), append(data, '\n')); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	return nil
}

// recoverManifest rebuilds the manifest by scanning the dataset payload
// files after the manifest itself was quarantined. Each <fp>.csv is parsed
// with type inference and re-indexed only when its recomputed fingerprint
// matches its file name; files that do not verify (corrupt, or dependent on
// non-inferred column types) are left in place unlisted — re-uploading the
// same content restores them losslessly.
func (s *Store) recoverManifest() error {
	s.manifest = manifestFile{Version: manifestVersion}
	entries, err := os.ReadDir(s.path(datasetsDir))
	if err != nil {
		return fmt.Errorf("store: scanning datasets for recovery: %w", err)
	}
	for _, e := range entries {
		fp, ok := strings.CutSuffix(e.Name(), datasetExt)
		if !ok || e.IsDir() {
			continue
		}
		ds, err := aod.ReadCSVFile(s.path(datasetsDir, e.Name()), aod.CSVOptions{})
		if err != nil || ds.Fingerprint() != fp {
			continue
		}
		meta := DatasetMeta{
			ID:          datasetID(fp),
			Fingerprint: fp,
			Rows:        ds.NumRows(),
			Cols:        ds.NumCols(),
			Columns:     ds.ColumnNames(),
			Types:       ds.ColumnTypes(),
		}
		if info, ierr := e.Info(); ierr == nil {
			meta.CreatedAt = info.ModTime().UTC()
		}
		s.manifest.Datasets = append(s.manifest.Datasets, meta)
		s.recovered++
	}
	// Deterministic listing order after recovery.
	sort.Slice(s.manifest.Datasets, func(i, j int) bool {
		return s.manifest.Datasets[i].Fingerprint < s.manifest.Datasets[j].Fingerprint
	})
	return s.saveManifestLocked()
}

// upsertDataset replaces or appends the manifest entry for meta.Fingerprint
// and persists the manifest.
func (s *Store) upsertDataset(meta DatasetMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	replaced := false
	for i, d := range s.manifest.Datasets {
		if d.Fingerprint == meta.Fingerprint {
			s.manifest.Datasets[i] = meta
			replaced = true
			break
		}
	}
	if !replaced {
		s.manifest.Datasets = append(s.manifest.Datasets, meta)
	}
	return s.saveManifestLocked()
}

// dropDataset removes the manifest entry for the fingerprint (used after its
// payload is quarantined) and persists the manifest.
func (s *Store) dropDataset(fingerprint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropDatasetLocked(fingerprint)
}

// dropDatasetIfStillMissing drops the manifest entry only if the payload
// file is still absent under the manifest lock — a concurrent re-upload may
// have re-persisted it between the caller's failed read and now, and that
// acknowledged-durable registration must not be erased.
func (s *Store) dropDatasetIfStillMissing(fingerprint, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return // resurrected; the new payload stands
	}
	s.dropDatasetLocked(fingerprint)
}

func (s *Store) dropDatasetLocked(fingerprint string) {
	for i, d := range s.manifest.Datasets {
		if d.Fingerprint == fingerprint {
			s.manifest.Datasets = append(s.manifest.Datasets[:i], s.manifest.Datasets[i+1:]...)
			// Best effort: the entry is already gone in memory; a failed
			// rewrite resurfaces it only until the next successful save.
			_ = s.saveManifestLocked()
			return
		}
	}
}

// datasetID derives the public dataset id from a fingerprint, matching the
// service registry's convention (first 12 hex digits).
func datasetID(fingerprint string) string {
	if len(fingerprint) < 12 {
		return fingerprint
	}
	return fingerprint[:12]
}
