package aod

import (
	"bytes"
	"context"
	"testing"
)

// TestShardedReportByteIdentical pins the acceptance contract of the
// distributed path at the facade: the sharded executor's serialized Report
// is byte-identical to Discover's on every generated workload, and the
// non-timing stats match.
func TestShardedReportByteIdentical(t *testing.T) {
	pool := LoopbackShardPool(3)
	defer pool.Close()
	workloads := map[string]*Dataset{
		"table1":  Table1(),
		"flight":  Flight(800, 8, 5),
		"ncvoter": NCVoter(600, 6, 9),
	}
	options := []Options{
		{Threshold: 0.10, IncludeOFDs: true},
		{Threshold: 0.05, Algorithm: AlgorithmExact},
		{Threshold: 0.10, Algorithm: AlgorithmIterative, IncludeOFDs: true},
		{Threshold: 0.10, Bidirectional: true, CollectRemovalSets: true},
	}
	for name, ds := range workloads {
		for _, opts := range options {
			local, err := Discover(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := DiscoverSharded(ds, opts, pool)
			if err != nil {
				t.Fatal(err)
			}
			var lb, sb bytes.Buffer
			// Timing stats differ run to run, by design; zero them so the
			// byte comparison covers everything else.
			zeroTimes := func(r *Report) {
				r.Stats.ValidationTime, r.Stats.PartitionTime, r.Stats.TotalTime = 0, 0, 0
			}
			zeroTimes(local)
			zeroTimes(sharded)
			if err := local.WriteJSON(&lb); err != nil {
				t.Fatal(err)
			}
			if err := sharded.WriteJSON(&sb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(lb.Bytes(), sb.Bytes()) {
				t.Errorf("%s %+v: sharded report differs from local:\nlocal:   %s\nsharded: %s",
					name, opts, lb.String(), sb.String())
			}
		}
	}
}

// TestShardedNilPoolFallsBack: a nil pool is plain local discovery.
func TestShardedNilPoolFallsBack(t *testing.T) {
	ds := Table1()
	rep, err := DiscoverSharded(ds, Options{Threshold: 0.12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OCs) == 0 {
		t.Error("nil-pool sharded discovery found nothing")
	}
}

// TestShardedStreaming: the sharded path delivers the same per-level
// progress contract as the local one.
func TestShardedStreaming(t *testing.T) {
	pool := LoopbackShardPool(2)
	defer pool.Close()
	ds := Flight(500, 7, 3)
	var events []Progress
	rep, err := DiscoverShardedStreamContext(context.Background(), ds, Options{Threshold: 0.1}, pool,
		func(p Progress, partial *Report) {
			events = append(events, p)
			if partial == nil {
				t.Error("nil partial report")
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events from sharded stream")
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Error("last sharded progress event not Final")
	}
	if last.OCsFound != len(rep.OCs) {
		t.Errorf("final event reports %d OCs, report has %d", last.OCsFound, len(rep.OCs))
	}
}
