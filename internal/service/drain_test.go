package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"aod"
)

// TestDrainLifecycle: BeginDrain stops admission immediately, flips the
// readiness probe, lets queued work finish, and WaitIdle observes the
// drain completing.
func TestDrainLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	info, _, err := s.Registry().Add("employees", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Submit(info.ID, aod.Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if _, err := s.Submit(info.ID, aod.Options{Threshold: 0.2}); err != ErrDraining {
		t.Fatalf("Submit during drain = %v, want ErrDraining", err)
	}

	// The job admitted before the drain must still finish.
	waitState(t, s, v.ID, JobDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	if st := s.Stats(); !st.Draining {
		t.Fatalf("Stats().Draining = false during drain: %+v", st)
	}
}

// TestHealthzDrainContract: /healthz answers 200 "ok" normally and 503
// "draining" with a Retry-After of at least one second during a drain —
// the readiness signal the router's probe loop keys off.
func TestHealthzDrainContract(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hv HealthView
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hv.Status != "ok" {
		t.Fatalf("healthy /healthz = %d %+v", resp.StatusCode, hv)
	}

	s.BeginDrain()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || hv.Status != "draining" {
		t.Fatalf("draining /healthz = %d %+v", resp.StatusCode, hv)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("draining /healthz Retry-After = %q, want integer ≥ 1", resp.Header.Get("Retry-After"))
	}
}

// TestSubmit503RetryAfter: the 503 shed path (drain here; queue-full shares
// the same branch) carries an honest integer Retry-After ≥ 1, bounded by
// the configured MaxQueueWait — never the old hard-coded constant contract
// of "1, always, regardless of congestion".
func TestSubmit503RetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueueWait: 30 * time.Second})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s, HandlerConfig{}))
	defer srv.Close()
	info, _, err := s.Registry().Add("employees", smallDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	s.BeginDrain()

	body := strings.NewReader(`{"datasetId":"` + info.ID + `","options":{"threshold":0.1}}`)
	resp, err := http.Post(srv.URL+"/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", resp.Header.Get("Retry-After"))
	}
	if ra < 1 || time.Duration(ra)*time.Second > 30*time.Second {
		t.Fatalf("Retry-After = %ds, want within [1s, MaxQueueWait=30s]", ra)
	}
}

// TestRetryAfterSecondsProperty: across random queue ages and wait bounds,
// the derived hint is always an integer ≥ 1 and never exceeds the bound
// (MaxQueueWait clamped to [1s, ∞), defaulting to a minute when unset) —
// the contract clients rely on to pace retries without starving forever or
// hammering a congested server.
func TestRetryAfterSecondsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		age := time.Duration(rng.Int63n(int64(20 * time.Minute)))
		maxWait := time.Duration(rng.Int63n(int64(10*time.Minute))) - time.Minute // includes ≤ 0
		got := RetryAfterSeconds(age, maxWait)

		bound := maxWait
		if bound <= 0 {
			bound = time.Minute
		}
		if bound < time.Second {
			bound = time.Second
		}
		boundSecs := int((bound + time.Second - 1) / time.Second)
		if got < 1 {
			t.Fatalf("RetryAfterSeconds(%v, %v) = %d < 1", age, maxWait, got)
		}
		if got > boundSecs {
			t.Fatalf("RetryAfterSeconds(%v, %v) = %d > bound %ds", age, maxWait, got, boundSecs)
		}
	}
	// Spot-check the shape: deeper congestion ⇒ larger (clamped) hints.
	if a, b := RetryAfterSeconds(4*time.Second, time.Minute), RetryAfterSeconds(40*time.Second, time.Minute); a > b {
		t.Fatalf("hint not monotone in queue age: %d > %d", a, b)
	}
}

// TestPeerReportAdoption: a report computed on replica A is adopted by
// replica B through the /peer/report channel — same bytes, zero
// re-validation on B — the property that makes router failover idempotent.
func TestPeerReportAdoption(t *testing.T) {
	a := New(Config{Workers: 2})
	defer a.Close()
	srvA := httptest.NewServer(NewHandler(a, HandlerConfig{}))
	defer srvA.Close()

	b := New(Config{Workers: 2, Peers: []string{srvA.URL}})
	defer b.Close()

	ds := smallDataset(t)
	infoA, _, err := a.Registry().Add("employees", ds)
	if err != nil {
		t.Fatal(err)
	}
	infoB, _, err := b.Registry().Add("employees", ds)
	if err != nil {
		t.Fatal(err)
	}
	if infoA.ID != infoB.ID {
		t.Fatalf("content addressing diverged: %s vs %s", infoA.ID, infoB.ID)
	}

	opts := aod.Options{Threshold: 0.1, IncludeOFDs: true}
	va, err := a.Submit(infoA.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	da := waitState(t, a, va.ID, JobDone)

	vb, err := b.Submit(infoB.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	db := waitState(t, b, vb.ID, JobDone)

	rawA, err := json.Marshal(da.Report)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := json.Marshal(db.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("adopted report differs from the original:\nA: %s\nB: %s", rawA, rawB)
	}

	stB := b.Stats()
	if stB.ValidationRuns != 0 {
		t.Fatalf("B re-validated %d times; the peer hit should have prevented all of them", stB.ValidationRuns)
	}
	if stB.PeerHits != 1 {
		t.Fatalf("B peer hits = %d, want 1", stB.PeerHits)
	}
	if stB.CacheHits == 0 {
		t.Fatal("B cache hits = 0; a peer adoption counts as a dedup-key hit")
	}
	if stA := a.Stats(); stA.PeerServed != 1 {
		t.Fatalf("A peer reports served = %d, want 1", stA.PeerServed)
	}
}
