package core

import (
	"context"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// PreparedTable binds a table to its single-attribute partitions, built once
// and immutable afterwards — the per-dataset state a shard worker caches by
// content fingerprint so that repeated jobs over the same dataset never pay
// the cold-start partitioning again. A PreparedTable may be shared by any
// number of concurrent TaskRunners.
type PreparedTable struct {
	tbl     *dataset.Table
	singles []*partition.Stripped
}

// Prepare builds the per-attribute partitions for the table. The partitions
// are marked shared (partition.Share): arenas refuse to reclaim their
// buffers, so one PreparedTable is safe to hand to any number of concurrent
// jobs — the server's cross-job partition cache depends on this.
func Prepare(tbl *dataset.Table) *PreparedTable {
	singles := make([]*partition.Stripped, tbl.NumCols())
	for a := range singles {
		singles[a] = partition.Single(tbl.Column(a)).Share()
	}
	return &PreparedTable{tbl: tbl, singles: singles}
}

// Table returns the underlying table.
func (p *PreparedTable) Table() *dataset.Table { return p.tbl }

// MemBytes reports the retained partition-buffer bytes of the prepared
// singles — the accounting currency of the server's bounded partition cache.
func (p *PreparedTable) MemBytes() int64 {
	var b int64
	for _, s := range p.singles {
		b += s.MemBytes()
	}
	return b
}

// TaskRunner executes NodeTasks against a prepared table — the worker-side
// counterpart of the executors. It owns a validator, an arena, and a
// two-generation partition cache (tasks only carry attribute sets; context
// partitions are rebuilt by folding the prepared single-column partitions,
// memoized so sibling tasks and consecutive levels share the work, mirroring
// the coordinator's keep-two-levels policy). One runner serves one job's
// sequence of level slices; it is not safe for concurrent use.
type TaskRunner struct {
	t   *traversal
	eng *engine
	src *foldSource
	// seeds are coordinator-shipped context partitions waiting to be
	// installed into the next RunLevel's fresh memo generation (installing
	// before rotate would let the rotation recycle them mid-level).
	seeds []SeedPartition
}

// SeedPartition is one coordinator-shipped context partition: the runner
// installs it into its fold memo so the level's tasks resolve the set by
// lookup instead of re-folding it from single-attribute partitions. The
// partition must be in canonical fold order (the product of the two
// smallest-attribute subsets, recursively) — shipped partitions come from
// the coordinator's lattice, which builds them exactly that way.
type SeedPartition struct {
	Set  lattice.AttrSet
	Part *partition.Stripped
}

// SeedPartitions queues shipped partitions for the next RunLevel call. The
// runner takes ownership: seeds recycle into its arena like any built
// partition once their generation dies.
func (r *TaskRunner) SeedPartitions(seeds []SeedPartition) {
	r.seeds = append(r.seeds, seeds...)
}

// NewTaskRunner validates the configuration against the table and returns a
// runner for one job. Coordinator-owned policies are stripped: a worker never
// honors TimeLimit (the coordinator owns abort policy, via the RunLevel
// context) and never uses the sorted-scan route (its per-attribute order
// cache is coordinator-local, matching the pool executor's behavior).
func (p *PreparedTable) NewTaskRunner(cfg Config) (*TaskRunner, error) {
	if err := cfg.Validate(p.tbl.NumCols()); err != nil {
		return nil, err
	}
	cfg.TimeLimit = 0
	cfg.UseSortedScan = false
	t := &traversal{
		tbl:      p.tbl,
		cfg:      cfg,
		eps:      cfg.effectiveThreshold(),
		numAttrs: p.tbl.NumCols(),
		maxLevel: p.tbl.NumCols(),
		arena:    partition.NewArena(),
		singles:  p.singles,
		start:    time.Now(),
		res:      &Result{},
	}
	r := &TaskRunner{t: t, eng: &engine{t: t, v: validate.New(), res: t.res}}
	r.src = &foldSource{r: r, memo: make(map[lattice.AttrSet]*partition.Stripped)}
	return r, nil
}

// PartitionCacheStats returns the runner's partition-cache hit and fresh
// build counts so far (hits include generation carry-overs).
func (r *TaskRunner) PartitionCacheStats() (hits, builds uint64) {
	return r.src.hits, r.src.builds
}

// SeededPartitions returns how many coordinator-shipped partitions were
// installed into the fold memo (duplicates of already-memoized sets are
// recycled, not counted).
func (r *TaskRunner) SeededPartitions() uint64 { return r.src.seeded }

// NumRows returns the prepared table's row count — the bound incoming seed
// partitions are validated against.
func (r *TaskRunner) NumRows() int { return r.t.tbl.NumRows() }

// RunLevel executes one slice of a lattice level in task order. The context
// bounds the work: when it is canceled (the coordinator gave up on this
// shard), the remaining tasks are skipped and the partial results are
// returned — the coordinator discards them and re-runs the slice elsewhere.
func (r *TaskRunner) RunLevel(ctx context.Context, tasks []NodeTask) []NodeResult {
	r.t.ctx = ctx
	r.src.rotate()
	if len(r.seeds) > 0 {
		r.src.install(r.seeds)
		r.seeds = r.seeds[:0]
	}
	out := make([]NodeResult, len(tasks))
	for i := range tasks {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		r.eng.execTask(&tasks[i], r.src, &out[i])
	}
	return out
}

// foldSource resolves context partitions by folding single-attribute
// partitions, memoized across two level generations: the partitions built
// for level ℓ's tasks (parents at ℓ−1, and every prefix below) are exactly
// the grandparents — and the fold bases — of level ℓ+1's tasks. Dead
// generations recycle into the runner's arena.
type foldSource struct {
	r          *TaskRunner
	memo, prev map[lattice.AttrSet]*partition.Stripped
	universe   *partition.Stripped
	// hits counts memoized (or generation-carried) partition lookups; builds
	// counts fresh arena products; seeded counts coordinator-shipped
	// partitions adopted into the memo — the worker's partition telemetry.
	hits, builds, seeded uint64
}

// install adopts shipped partitions into the live generation. A set the memo
// (or the carried previous generation) already holds wins — the local copy is
// arena-recycled memory — and the duplicate seed's buffers recycle instead.
func (s *foldSource) install(seeds []SeedPartition) {
	for _, sd := range seeds {
		if sd.Part == nil {
			continue
		}
		if _, ok := s.memo[sd.Set]; ok {
			s.r.t.arena.Recycle(sd.Part)
			continue
		}
		if p, ok := s.prev[sd.Set]; ok {
			s.memo[sd.Set] = p
			delete(s.prev, sd.Set)
			s.r.t.arena.Recycle(sd.Part)
			continue
		}
		s.memo[sd.Set] = sd.Part
		s.seeded++
	}
}

// rotate opens a new level generation: the current memo becomes the previous
// one, and the partitions of the dropped generation (not carried forward by
// lookups) return their buffers to the arena.
func (s *foldSource) rotate() {
	for _, p := range s.prev {
		s.r.t.arena.Recycle(p)
	}
	s.prev = s.memo
	s.memo = make(map[lattice.AttrSet]*partition.Stripped)
}

func (s *foldSource) partitionOf(set lattice.AttrSet, st *TaskStats) *partition.Stripped {
	switch set.Card() {
	case 0:
		if s.universe == nil {
			s.universe = partition.Universe(s.r.t.tbl.NumRows())
		}
		return s.universe
	case 1:
		return s.r.t.singles[set.Min()]
	}
	if p, ok := s.memo[set]; ok {
		s.hits++
		return p
	}
	if p, ok := s.prev[set]; ok {
		// Carry the partition into the live generation (and out of the next
		// rotation's recycle sweep).
		s.hits++
		s.memo[set] = p
		delete(s.prev, set)
		return p
	}
	// Replicate the lattice's product structure exactly — Π_S is the product
	// of the partitions missing the two smallest attributes, recursively —
	// so the resulting CSR class order (which validators' removal-set
	// collection observes) is identical to the coordinator's, not merely the
	// same set family.
	c1 := set.Min()
	c2 := set.Remove(c1).Min()
	p0 := s.partitionOf(set.Remove(c1), st)
	p1 := s.partitionOf(set.Remove(c2), st)
	// Only the fresh product's own cost lands here; the recursive bases
	// charged themselves already.
	t0 := time.Now()
	p := s.r.t.arena.Product(p0, p1)
	st.PartitionTime += time.Since(t0)
	s.builds++
	s.memo[set] = p
	return p
}

func (s *foldSource) classIDsOf(set lattice.AttrSet) []int32 {
	// Only the sorted-scan exact route asks for class ids, and workers never
	// enable it (NewTaskRunner strips UseSortedScan).
	panic("core: classIDsOf on a shard worker (sorted-scan is coordinator-only)")
}
