package core

import (
	"math/rand"
	"testing"
)

// Discovery with the sorted-scan exact validator must produce exactly the
// same dependencies as the default sort-based route.
func TestSortedScanDiscoveryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for iter := 0; iter < 30; iter++ {
		tbl := randomTable(rng, 5+rng.Intn(40), 2+rng.Intn(4), 2+rng.Intn(4))
		base := Config{Validator: ValidatorExact, IncludeOFDs: true}
		std, err := Discover(tbl, base)
		if err != nil {
			t.Fatal(err)
		}
		scanCfg := base
		scanCfg.UseSortedScan = true
		scan, err := Discover(tbl, scanCfg)
		if err != nil {
			t.Fatal(err)
		}
		g, w := ocSet(scan), ocSet(std)
		if len(g) != len(w) {
			t.Fatalf("iter %d: scan %d OCs vs sort %d", iter, len(g), len(w))
		}
		for k := range w {
			if _, ok := g[k]; !ok {
				t.Fatalf("iter %d: scan missing OC %v", iter, k)
			}
		}
		if len(ofdSet(scan)) != len(ofdSet(std)) {
			t.Fatalf("iter %d: OFD counts differ", iter)
		}
	}
}

// UseSortedScan must be a no-op under the approximate validators.
func TestSortedScanIgnoredForApproximate(t *testing.T) {
	tbl := paperTable1(t)
	cfg := Config{Validator: ValidatorOptimal, Threshold: 0.12, UseSortedScan: true}
	withScan, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UseSortedScan = false
	without, err := Discover(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(withScan.OCs) != len(without.OCs) {
		t.Errorf("scan flag changed approximate results: %d vs %d", len(withScan.OCs), len(without.OCs))
	}
}
