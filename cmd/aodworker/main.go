// Command aodworker is a shard worker for distributed AOD discovery: an
// aodserver started with -workers dials it per job, ships each dataset at
// most once (workers cache datasets — table plus single-column partitions —
// by content fingerprint), and streams it lattice-level task slices to
// validate. Workers are stateless beyond their cache: killing one mid-job
// only re-routes its slices; adding one is just listing its address in the
// server's -workers flag.
//
// Usage:
//
//	aodworker [-addr :8712] [-max-datasets N] [-quiet]
//	          [-metrics-addr ADDR] [-pprof-addr ADDR]
//
// -metrics-addr serves GET /metrics (Prometheus text: sessions, task and
// level counts, slice execution latency histogram, dataset-cache state) on a
// separate HTTP listener; -pprof-addr serves the runtime profiles at
// /debug/pprof/. Both are off by default and should stay on private
// interfaces.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"aod"
	"aod/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8712", "listen address (host:port; port 0 picks an ephemeral port)")
	maxDatasets := flag.Int("max-datasets", 16, "prepared-dataset cache bound (least recently used evicted; negative = unbounded)")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")
	metricsAddr := flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text) on this address (empty disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it off public interfaces)")
	flag.Parse()

	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if *quiet {
		logf = nil
	}
	metrics := aod.NewMetricsRegistry()
	w := shard.NewWorker(shard.WorkerOptions{MaxDatasets: *maxDatasets, Logf: logf, Metrics: metrics})

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aodworker: metrics:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = metrics.WritePrometheus(rw)
		})
		fmt.Printf("aodworker metrics on http://%s/metrics\n", mln.Addr())
		go func() { _ = http.Serve(mln, mux) }()
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aodworker: pprof:", err)
			os.Exit(1)
		}
		// A dedicated mux rather than http.DefaultServeMux, so nothing else
		// ever leaks onto the pprof port.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("aodworker pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() { _ = http.Serve(pln, mux) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aodworker:", err)
		os.Exit(1)
	}
	// The resolved address matters when port 0 was requested.
	fmt.Printf("aodworker listening on %s (dataset cache %d)\n", ln.Addr(), *maxDatasets)

	done := make(chan error, 1)
	go func() { done <- w.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("aodworker: %s — shutting down (%d tasks served)\n", s, w.TasksRun())
		ln.Close()
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "aodworker:", err)
			os.Exit(1)
		}
	}
}
