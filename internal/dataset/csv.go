package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// MaxRows limits the number of data rows read; 0 means unlimited.
	MaxRows int
	// Columns, when non-empty, restricts parsing to the named header columns.
	Columns []string
	// NoHeader indicates the first record is data; columns are then named
	// col0, col1, ...
	NoHeader bool
}

// ReadCSV parses CSV data into a Table, inferring each column's type:
// a column is KindInt if every value parses as int64, else KindFloat if every
// value parses as float64, else KindString. Empty fields are typed as strings
// unless the whole column is empty-or-numeric, in which case empties become
// the minimum sentinel (they parse as strings; a column containing any empty
// field falls back to KindString so that missing data keeps a stable order).
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1

	var header []string
	if !opts.NoHeader {
		rec, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
		}
		header = append(header, rec...)
	}

	var raw [][]string // column-major
	var names []string
	rows := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", rows+1, err)
		}
		if names == nil {
			if header == nil {
				header = make([]string, len(rec))
				for i := range rec {
					header[i] = fmt.Sprintf("col%d", i)
				}
			}
			names = header
			raw = make([][]string, len(names))
		}
		if len(rec) != len(names) {
			return nil, fmt.Errorf("dataset: CSV row %d has %d fields, want %d", rows+1, len(rec), len(names))
		}
		for i, f := range rec {
			raw[i] = append(raw[i], f)
		}
		rows++
		if opts.MaxRows > 0 && rows >= opts.MaxRows {
			break
		}
	}
	if rows == 0 {
		return nil, fmt.Errorf("dataset: CSV contains no data rows")
	}

	keep := make(map[string]bool)
	for _, c := range opts.Columns {
		keep[c] = true
	}

	b := NewBuilder()
	added := 0
	for i, name := range names {
		if len(keep) > 0 && !keep[name] {
			continue
		}
		addInferred(b, name, raw[i])
		added++
	}
	if added == 0 {
		return nil, fmt.Errorf("dataset: none of the requested columns %v found in CSV header", opts.Columns)
	}
	return b.Build()
}

// ReadCSVFile opens path and parses it with ReadCSV.
func ReadCSVFile(path string, opts CSVOptions) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, opts)
}

func addInferred(b *Builder, name string, vals []string) {
	allInt, allFloat := true, true
	for _, v := range vals {
		if v == "" {
			allInt, allFloat = false, false
			break
		}
		if allInt {
			if _, err := strconv.ParseInt(v, 10, 64); err != nil {
				allInt = false
			}
		}
		if allFloat {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				allFloat = false
			}
		}
		if !allInt && !allFloat {
			break
		}
	}
	switch {
	case allInt:
		ints := make([]int64, len(vals))
		for i, v := range vals {
			ints[i], _ = strconv.ParseInt(v, 10, 64)
		}
		b.AddInts(name, ints)
	case allFloat:
		floats := make([]float64, len(vals))
		for i, v := range vals {
			floats[i], _ = strconv.ParseFloat(v, 64)
		}
		b.AddFloats(name, floats)
	default:
		b.AddStrings(name, vals)
	}
}

// WriteCSV serializes the table (raw display values) as CSV with a header.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for row := 0; row < t.NumRows(); row++ {
		for i := 0; i < t.NumCols(); i++ {
			rec[i] = t.Column(i).ValueString(row)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to path, creating or truncating it.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
