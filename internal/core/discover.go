package core

import (
	"context"
	"time"

	"aod/internal/dataset"
	"aod/internal/lattice"
	"aod/internal/partition"
	"aod/internal/validate"
)

// Discover runs the level-wise discovery framework over the table and
// returns the complete, minimal set of verified dependencies under the
// configured validator and threshold (see the package comment for the exact
// semantics and caveats of the iterative validator).
func Discover(tbl *dataset.Table, cfg Config) (*Result, error) {
	return DiscoverContext(context.Background(), tbl, cfg)
}

// DiscoverContext is Discover with cooperative cancellation: the context is
// polled between candidate validations, so a canceled run stops within one
// validation's latency instead of finishing the lattice. On cancellation the
// partial result is returned with Stats.Canceled set and a nil error — the
// same contract as a TimeLimit abort (callers that need the distinction can
// inspect ctx.Err()). It is the serial-executor instantiation of the shared
// Pipeline.
func DiscoverContext(ctx context.Context, tbl *dataset.Table, cfg Config) (*Result, error) {
	return Pipeline{}.Run(ctx, tbl, cfg)
}

// engine is the node-processing stage shared by every executor: it examines
// the candidates hosted at one lattice node, routing them through the
// configured validator and the axiom-based pruning, and accumulates
// dependencies and stats into res. Engines are cheap; a pool executor owns
// one per worker (Validator scratch is not concurrency-safe), all sharing
// one traversal.
type engine struct {
	t *traversal
	v *validate.Validator
	// res is the accumulation target: the traversal's result under the
	// serial executor, a worker-local fragment (merged in node order by the
	// pool executor) otherwise.
	res *Result
	// scratch is the engine's reusable NodeResult for the apply-immediately
	// paths (processNode); executors that retain results across a level use
	// fresh NodeResults instead.
	scratch NodeResult
}

// aborted reports that the run must stop, recording the cause in the
// engine's stats fragment (merged upward by pool executors).
func (e *engine) aborted() bool {
	return e.t.abortedInto(&e.res.Stats)
}

// processNode examines all candidates hosted at the node through the
// location-transparent task path: propagate validity state from the parents
// into a NodeTask (buildTask), validate its candidates (execTask) with
// partitions resolved from the lattice, and fold the result back into the
// node and the engine's accumulation target (applyTask). It returns the
// number of candidates validated (for the early-stop rule). The sharded
// executor runs the same three stages with execTask on a remote worker.
func (e *engine) processNode(node *lattice.Node, parents, grandparents *lattice.Level) int {
	task := buildTask(node, parents, e.t.numAttrs, e.t.cfg.Bidirectional)
	// The node's result is applied before the next node, so the engine's
	// scratch NodeResult serves every node without allocating.
	e.execTask(&task, levelSource{e: e, parents: parents, grandparents: grandparents}, &e.scratch)
	e.applyTask(node, &task, &e.scratch)
	return e.scratch.Candidates
}

// columnB returns the B column in the requested direction.
func (e *engine) columnB(b int, desc bool) *dataset.Column {
	if desc {
		return e.t.tbl.Column(b).Reversed()
	}
	return e.t.tbl.Column(b)
}

func (e *engine) materialize(node *lattice.Node) *partition.Stripped {
	if node.HasPartition() {
		return node.PartitionIn(e.t.arena, e.t.singles)
	}
	t0 := time.Now()
	p := node.PartitionIn(e.t.arena, e.t.singles)
	e.res.Stats.PartitionTime += time.Since(t0)
	return p
}

// sampleMinRows is the smallest non-singleton context coverage for which the
// hybrid-sampling pre-filter is worth running.
const sampleMinRows = 512

// sampleRejects applies the hybrid-sampling pre-filter: true means the
// candidate's sampled error estimate is so far above the threshold that full
// validation is skipped.
func (e *engine) sampleRejects(ctx *partition.Stripped, a, b int, desc bool) bool {
	if e.t.cfg.SampleStride <= 1 || e.t.cfg.Validator == ValidatorExact {
		return false
	}
	if ctx.Size() < sampleMinRows {
		return false
	}
	slack := e.t.cfg.SampleSlack
	if slack == 0 {
		slack = DefaultSampleSlack
	}
	est, sampled := e.v.SampledAOCEstimate(ctx, e.t.tbl.Column(a), e.columnB(b, desc), e.t.cfg.SampleStride)
	if sampled == 0 {
		return false
	}
	return est > e.t.eps+slack
}

func (e *engine) validateOFD(ctx *partition.Stripped, col *dataset.Column) validate.Result {
	if e.t.cfg.Validator == ValidatorExact {
		if validate.ExactOFD(ctx, col) {
			return validate.Result{Valid: true}
		}
		return validate.Result{Valid: false, Aborted: true}
	}
	return e.v.ApproxOFD(ctx, col, validate.Options{Threshold: e.t.eps})
}

// validateOCVia validates the OC candidate with context set gpSet (whose
// partition is ctx) over attributes a and b (B descending when desc),
// routing to the configured validator — including the sorted-scan exact
// route when enabled (serial executor only; parts resolves the class ids).
func (e *engine) validateOCVia(parts partSource, gpSet lattice.AttrSet, ctx *partition.Stripped, a, b int, desc bool) validate.Result {
	cb := e.columnB(b, desc)
	if e.t.orders != nil && e.t.cfg.Validator == ValidatorExact {
		ids := parts.classIDsOf(gpSet)
		ok, _ := e.v.ExactOCScan(ids, ctx.NumClasses(), e.t.orders.Order(a),
			e.t.tbl.Column(a), cb)
		return validate.Result{Valid: ok, Aborted: !ok}
	}
	return e.validateOC(ctx, e.t.tbl.Column(a), cb)
}

func (e *engine) validateOC(ctx *partition.Stripped, a, b *dataset.Column) validate.Result {
	switch e.t.cfg.Validator {
	case ValidatorExact:
		if ok, _ := e.v.ExactOC(ctx, a, b); ok {
			return validate.Result{Valid: true}
		}
		return validate.Result{Valid: false, Aborted: true}
	case ValidatorIterative:
		return e.v.IterativeAOC(ctx, a, b, validate.Options{Threshold: e.t.eps})
	default:
		return e.v.OptimalAOC(ctx, a, b, validate.Options{Threshold: e.t.eps})
	}
}

// collectOCRemovals re-validates a verified OC with removal collection. The
// optimal validator is used even under the iterative configuration — once a
// dependency is deemed valid, the minimal removal set is the useful artifact
// for repair.
func (e *engine) collectOCRemovals(ctx *partition.Stripped, a, b int, desc bool) []int32 {
	r := e.v.OptimalAOC(ctx, e.t.tbl.Column(a), e.columnB(b, desc),
		validate.Options{Threshold: 1, CollectRemovals: true})
	return r.RemovalRows
}
