package load

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Class is one traffic class of the load mix. The names line up with the
// server's aod_job_seconds{class=...} histogram labels, so client-observed
// and server-observed latency join on the same key.
type Class int

const (
	// CacheHit re-submits a configuration warmed at setup: the server answers
	// from its result cache without a validation run.
	CacheHit Class = iota
	// Small submits a fresh small discovery job (admission estimate below the
	// server's small/large split) — every request validates.
	Small
	// Large submits a fresh time-boxed crawl of a large dataset (admission
	// estimate past the split): bounded latency, never cached, always
	// classified large by the server.
	Large
	numClasses
)

// Classes lists every traffic class in canonical order.
func Classes() []Class { return []Class{CacheHit, Small, Large} }

// String returns the class label shared with the server's histograms.
func (c Class) String() string {
	switch c {
	case CacheHit:
		return "cachehit"
	case Small:
		return "small"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Mix is the traffic composition as integer weights per class.
type Mix struct {
	weights [numClasses]int
	total   int
}

// DefaultMix is the canonical production-shaped composition: mostly cache-hit
// polls, a steady stream of small jobs, a trickle of large crawls.
func DefaultMix() Mix {
	m, _ := ParseMix("cachehit=70,small=25,large=5")
	return m
}

// ParseMix parses "cachehit=70,small=25,large=5". Weights are non-negative
// integers (a class may be omitted or zero); at least one must be positive.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("load: mix entry %q is not class=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: mix weight %q must be a non-negative integer", val)
		}
		var c Class
		switch strings.TrimSpace(name) {
		case "cachehit":
			c = CacheHit
		case "small":
			c = Small
		case "large":
			c = Large
		default:
			return Mix{}, fmt.Errorf("load: unknown traffic class %q (want cachehit, small, large)", name)
		}
		m.weights[c] += w
	}
	for _, w := range m.weights {
		m.total += w
	}
	if m.total == 0 {
		return Mix{}, fmt.Errorf("load: mix %q has no positive weight", s)
	}
	return m, nil
}

// Weight returns the class's weight.
func (m Mix) Weight(c Class) int { return m.weights[c] }

// String renders the mix back in flag form.
func (m Mix) String() string {
	parts := make([]string, 0, numClasses)
	for _, c := range Classes() {
		parts = append(parts, fmt.Sprintf("%s=%d", c, m.weights[c]))
	}
	return strings.Join(parts, ",")
}

// Pick draws one class from the mix using rng.
func (m Mix) Pick(rng *rand.Rand) Class {
	n := rng.Intn(m.total)
	for _, c := range Classes() {
		if n < m.weights[c] {
			return c
		}
		n -= m.weights[c]
	}
	return Large // unreachable
}
