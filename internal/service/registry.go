package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aod"
)

// ErrRegistryFull is returned by Registry.Add when MaxDatasets is reached.
var ErrRegistryFull = errors.New("service: dataset registry is full")

// ErrNoDataset is returned when a dataset id is unknown.
var ErrNoDataset = errors.New("service: no such dataset")

// DatasetInfo is the registry's public record of an uploaded dataset.
type DatasetInfo struct {
	// ID is the first 12 hex digits of the fingerprint — stable across
	// re-uploads of identical content, which deduplicates the registry.
	ID string `json:"id"`
	// Name is the client-supplied display name (optional).
	Name string `json:"name,omitempty"`
	// Fingerprint is the full content hash (see aod.Dataset.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	Rows        int    `json:"rows"`
	Cols        int    `json:"cols"`
	// Columns are the attribute names in schema order.
	Columns   []string  `json:"columns"`
	CreatedAt time.Time `json:"createdAt"`
}

// Registry holds uploaded datasets keyed by content fingerprint. Uploading
// the same content twice returns the original record, so clients can submit
// a dataset once and query many (threshold, algorithm) configurations — or
// re-upload idempotently — without growing server memory.
type Registry struct {
	mu    sync.RWMutex
	byID  map[string]*storedDataset
	order []string // insertion order, for stable listings
	max   int      // 0 = unbounded
}

type storedDataset struct {
	info DatasetInfo
	ds   *aod.Dataset
}

// NewRegistry returns a registry bounded to max datasets (0 = unbounded).
func NewRegistry(max int) *Registry {
	return &Registry{byID: make(map[string]*storedDataset), max: max}
}

// Add registers the dataset under a fingerprint-derived id and returns its
// record. Content already present is deduplicated: the existing record is
// returned with created=false and the new name (if any) is ignored.
func (r *Registry) Add(name string, ds *aod.Dataset) (DatasetInfo, bool, error) {
	fp := ds.Fingerprint()
	id := fp[:12]
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byID[id]; ok {
		if s.info.Fingerprint != fp {
			// A 48-bit prefix collision between distinct contents
			// (~2^-48 per pair): refuse rather than silently alias the
			// stored dataset.
			return DatasetInfo{}, false, fmt.Errorf(
				"service: dataset id collision: %q already maps to fingerprint %s", id, s.info.Fingerprint)
		}
		return s.info, false, nil
	}
	if r.max > 0 && len(r.byID) >= r.max {
		return DatasetInfo{}, false, ErrRegistryFull
	}
	info := DatasetInfo{
		ID:          id,
		Name:        name,
		Fingerprint: fp,
		Rows:        ds.NumRows(),
		Cols:        ds.NumCols(),
		Columns:     ds.ColumnNames(),
		CreatedAt:   time.Now().UTC(),
	}
	r.byID[id] = &storedDataset{info: info, ds: ds}
	r.order = append(r.order, id)
	return info, true, nil
}

// Get returns the dataset and its record.
func (r *Registry) Get(id string) (*aod.Dataset, DatasetInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byID[id]
	if !ok {
		return nil, DatasetInfo{}, fmt.Errorf("%w: %q", ErrNoDataset, id)
	}
	return s.ds, s.info, nil
}

// List returns all records in upload order.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id].info)
	}
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
