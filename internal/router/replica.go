package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"aod/internal/service"
)

// atomicString is atomic.Value constrained to strings, with a zero-value
// Load of "".
type atomicString struct{ v atomic.Value }

func (a *atomicString) Store(s string) { a.v.Store(s) }
func (a *atomicString) Load() string {
	s, _ := a.v.Load().(string)
	return s
}

// replica is the router's view of one backend aodserver: its base URL plus
// the last probe's observations. Health is written from two directions —
// the active probe loop and passive marking when a proxied RPC hits a
// connect error — and read lock-free on every routing decision.
type replica struct {
	idx  int
	base string // http://host:port, no trailing slash

	up         atomic.Bool
	draining   atomic.Bool
	queuedJobs atomic.Int64
	queueAgeNs atomic.Int64
	lastErr    atomicString
	probedAt   atomic.Int64 // unix nanos of the last completed probe
}

func (rp *replica) name() string { return "r" + strconv.Itoa(rp.idx) }

// replicaView is the /routerz JSON for one replica.
type replicaView struct {
	Name             string `json:"name"`
	Base             string `json:"base"`
	Up               bool   `json:"up"`
	Draining         bool   `json:"draining,omitempty"`
	QueuedJobs       int64  `json:"queuedJobs"`
	OldestQueueAgeNs int64  `json:"oldestQueueAgeNs"`
	LastError        string `json:"lastError,omitempty"`
	LastProbeUnixNs  int64  `json:"lastProbeUnixNs,omitempty"`
}

func (rp *replica) view() replicaView {
	return replicaView{
		Name:             rp.name(),
		Base:             rp.base,
		Up:               rp.up.Load(),
		Draining:         rp.draining.Load(),
		QueuedJobs:       rp.queuedJobs.Load(),
		OldestQueueAgeNs: rp.queueAgeNs.Load(),
		LastError:        rp.lastErr.Load(),
		LastProbeUnixNs:  rp.probedAt.Load(),
	}
}

// fnv1a64 is the rendezvous hash base: tiny, allocation-free, and stable
// across processes (routing must agree between router restarts so replica
// result caches stay warm for their home keys).
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// candidates orders the replicas for a routing key by rendezvous
// (highest-random-weight) hashing: every key has a stable home replica, and
// when that home disappears the key's traffic redistributes evenly across
// the survivors instead of all landing on one neighbour. Healthy replicas
// come first (in rendezvous order), unhealthy ones trail as a last resort —
// a stale probe shouldn't turn a reachable cluster into a refusal.
func (rt *Router) candidates(key string) []*replica {
	type scored struct {
		rp *replica
		w  uint64
	}
	sc := make([]scored, 0, len(rt.replicas))
	for _, rp := range rt.replicas {
		sc = append(sc, scored{rp, fnv1a64(key + "|" + rp.base)})
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].w != sc[j].w {
			return sc[i].w > sc[j].w
		}
		return sc[i].rp.idx < sc[j].rp.idx
	})
	out := make([]*replica, 0, len(sc))
	for _, s := range sc {
		if s.rp.up.Load() {
			out = append(out, s.rp)
		}
	}
	for _, s := range sc {
		if !s.rp.up.Load() {
			out = append(out, s.rp)
		}
	}
	return out
}

// orderedHealthyFirst returns every replica, healthy ones first, in index
// order — the fan-out order for uploads and list merges where no routing
// key applies.
func (rt *Router) orderedHealthyFirst() []*replica {
	out := make([]*replica, 0, len(rt.replicas))
	for _, rp := range rt.replicas {
		if rp.up.Load() {
			out = append(out, rp)
		}
	}
	for _, rp := range rt.replicas {
		if !rp.up.Load() {
			out = append(out, rp)
		}
	}
	return out
}

// probeLoop actively probes one replica's /healthz until Close. The first
// probe fires immediately so a router pointed at a dead replica learns so
// within one round-trip, not one interval.
func (rt *Router) probeLoop(rp *replica) {
	defer rt.wg.Done()
	rt.probe(rp)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probe(rp)
		}
	}
}

// probe fetches /healthz once and folds the result into the replica state.
// A draining replica answers 503 with a valid body: it is marked unready
// (no new work routes to it) but its queue observations still update, so
// /routerz keeps showing the drain progressing.
func (rt *Router) probe(rp *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.base+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := rt.transport.RoundTrip(req)
	rp.probedAt.Store(rt.now().UnixNano())
	if err != nil {
		rt.setUp(rp, false, err.Error())
		return
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	var hv service.HealthView
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hv); derr == nil {
		rp.queuedJobs.Store(int64(hv.QueuedJobs))
		rp.queueAgeNs.Store(hv.OldestQueueAgeNs)
		rp.draining.Store(hv.Status == "draining")
	}
	if resp.StatusCode != http.StatusOK {
		rt.setUp(rp, false, "healthz "+resp.Status)
		return
	}
	rt.setUp(rp, true, "")
}

// setUp flips a replica's readiness, logging only transitions — per-probe
// logs at 2 Hz per replica would drown everything else.
func (rt *Router) setUp(rp *replica, up bool, reason string) {
	was := rp.up.Swap(up)
	rp.lastErr.Store(reason)
	if was == up {
		return
	}
	if up {
		rt.logf("replica %s (%s) up", rp.name(), rp.base)
	} else {
		rt.logf("replica %s (%s) down: %s", rp.name(), rp.base, reason)
	}
}
