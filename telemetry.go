package aod

import "aod/internal/telemetry"

// MetricsRegistry collects counters, gauges, and latency histograms and
// renders them in the Prometheus text exposition format. One registry can be
// shared across subsystems — the aodserver passes the same registry to its
// discovery service and its shard pool so GET /metrics shows both — and all
// operations are safe for concurrent use.
type MetricsRegistry = telemetry.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }
