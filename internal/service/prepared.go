package service

import (
	"container/list"
	"sync"

	"aod"
)

// preparedCache is a byte-bounded LRU of prepared datasets (their
// single-attribute partitions) keyed by content fingerprint — the server-side
// half of cross-job partition memoization. A hit hands the job partitions an
// earlier job already built, so a repeat submission against a registered
// dataset — same data, different threshold — skips cold-start partitioning
// entirely. Entries are immutable (prepared partitions are marked shared),
// so one entry may back any number of concurrent jobs; eviction only drops
// the cache's reference, and running jobs keep theirs.
//
// The cache is keyed by fingerprint, not dataset id or pointer: re-uploads,
// registry evictions and disk reloads produce fresh Dataset objects, but
// equal fingerprints guarantee identical discovery results, so the cached
// prepared copy substitutes for any of them.
type preparedCache struct {
	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type preparedEntry struct {
	fp    string
	prep  *aod.PreparedDataset
	bytes int64
}

// newPreparedCache returns a cache retaining at most maxBytes of prepared
// partitions; maxBytes <= 0 disables the cache (nil return).
func newPreparedCache(maxBytes int64) *preparedCache {
	if maxBytes <= 0 {
		return nil
	}
	return &preparedCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the prepared dataset for the fingerprint, refreshing recency.
func (c *preparedCache) get(fp string) (*aod.PreparedDataset, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[fp]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*preparedEntry).prep, true
}

// put admits the prepared dataset, evicting least recently used entries past
// the byte budget. A single entry larger than the whole budget is not
// admitted at all — it would only evict everything else and then miss anyway.
func (c *preparedCache) put(fp string, p *aod.PreparedDataset) {
	if c == nil {
		return
	}
	b := p.MemBytes()
	if b > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		// A concurrent miss on the same fingerprint prepared a duplicate;
		// keep the incumbent (jobs already hold it) and refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[fp] = c.ll.PushFront(&preparedEntry{fp: fp, prep: p, bytes: b})
	c.bytes += b
	for c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		e := oldest.Value.(*preparedEntry)
		c.ll.Remove(oldest)
		delete(c.items, e.fp)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// stats returns current entry count, retained bytes, and lifetime evictions.
func (c *preparedCache) stats() (entries int, bytes int64, evictions uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.evictions
}
